#include "optimizer/planner.h"

#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "base/string_util.h"
#include "exec/basic_ops.h"
#include "exec/columnar.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/nest_op.h"
#include "exec/nested_loop_join.h"
#include "rewrite/expr_rewrite.h"

namespace tmdb {

std::string JoinImplName(JoinImpl impl) {
  switch (impl) {
    case JoinImpl::kAuto:
      return "auto";
    case JoinImpl::kNestedLoop:
      return "nested-loop";
    case JoinImpl::kHash:
      return "hash";
    case JoinImpl::kMerge:
      return "sort-merge";
  }
  return "?";
}

EquiKeySplit SplitEquiKeys(const Expr& pred, const std::string& left_var,
                           const std::string& right_var) {
  EquiKeySplit out;
  std::vector<Expr> residual;
  for (Expr& c : SplitConjuncts(pred)) {
    bool used = false;
    if (c.is_binary() && c.binary_op() == BinaryOp::kEq &&
        CollectSubplans(c).empty()) {
      auto vars_of = [](const Expr& e) { return e.FreeVars(); };
      const std::set<std::string> l = vars_of(c.lhs());
      const std::set<std::string> r = vars_of(c.rhs());
      auto only = [](const std::set<std::string>& s,
                     const std::string& v) {
        return s.size() <= 1 && (s.empty() || s.count(v) > 0);
      };
      // A key pair must bind both sides: x-side references left_var only,
      // y-side right_var only (at least one side non-empty each way to be
      // a useful key; constant = constant goes to residual).
      if (only(l, left_var) && only(r, right_var) &&
          (!l.empty() || !r.empty())) {
        out.left_keys.push_back(c.lhs());
        out.right_keys.push_back(c.rhs());
        used = true;
      } else if (only(l, right_var) && only(r, left_var) &&
                 (!l.empty() || !r.empty())) {
        out.left_keys.push_back(c.rhs());
        out.right_keys.push_back(c.lhs());
        used = true;
      }
    }
    if (!used) residual.push_back(std::move(c));
  }
  out.residual = Expr::AndAll(std::move(residual));
  return out;
}

double EstimateCardinality(const LogicalOp& op) {
  switch (op.op_kind()) {
    case OpKind::kScan:
      return static_cast<double>(op.table()->NumRows());
    case OpKind::kExprSource:
      return 10.0;  // unknowable without data; small constant
    case OpKind::kSelect:
      return 0.25 * EstimateCardinality(*op.input());
    case OpKind::kMap:
      return EstimateCardinality(*op.input());
    case OpKind::kJoin: {
      const double l = EstimateCardinality(*op.left());
      const double r = EstimateCardinality(*op.right());
      EquiKeySplit split =
          SplitEquiKeys(op.pred(), op.left_var(), op.right_var());
      if (!split.left_keys.empty()) return std::max(l, r);
      return 0.1 * l * r;
    }
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      return 0.5 * EstimateCardinality(*op.left());
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin:
      // One output tuple per left tuple (at least) for nest join; the
      // outerjoin is close enough for ranking purposes.
      return EstimateCardinality(*op.left());
    case OpKind::kNest:
      return 0.5 * EstimateCardinality(*op.input());
    case OpKind::kUnnest:
      return 4.0 * EstimateCardinality(*op.input());
    case OpKind::kUnion:
      return EstimateCardinality(*op.left()) +
             EstimateCardinality(*op.right());
    case OpKind::kDifference:
      return EstimateCardinality(*op.left());
  }
  return 1.0;
}

namespace {

JoinMode ToJoinMode(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return JoinMode::kInner;
    case OpKind::kSemiJoin:
      return JoinMode::kSemi;
    case OpKind::kAntiJoin:
      return JoinMode::kAnti;
    case OpKind::kOuterJoin:
      return JoinMode::kLeftOuter;
    default:
      return JoinMode::kNestJoin;
  }
}

}  // namespace

Result<PhysicalOpPtr> Planner::Plan(const LogicalOpPtr& logical) const {
  switch (logical->op_kind()) {
    case OpKind::kScan:
      return PhysicalOpPtr(
          new TableScanOp(logical->table(), options_.enable_columnar));
    case OpKind::kExprSource:
      return PhysicalOpPtr(new ExprSourceOp(logical->func()));
    case OpKind::kSelect: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      // Compile the predicate to column form when possible; FilterOp falls
      // back to row evaluation at Open unless the child is actually
      // columnar with a matching layout.
      std::optional<ColumnPredicate> cpred;
      if (options_.enable_columnar) {
        Type in = logical->input()->output_type();
        if (in.is_collection()) in = in.element();
        cpred = ColumnPredicate::Compile(logical->pred(), logical->var(), in);
      }
      return PhysicalOpPtr(new FilterOp(std::move(child), logical->var(),
                                        logical->pred(), std::move(cpred)));
    }
    case OpKind::kMap: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      return PhysicalOpPtr(
          new MapOp(std::move(child), logical->var(), logical->func()));
    }
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kNestJoin: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, Plan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right, Plan(logical->right()));

      JoinSpec spec;
      spec.mode = ToJoinMode(logical->op_kind());
      spec.left_var = logical->left_var();
      spec.right_var = logical->right_var();
      spec.right_type = logical->right()->output_type();
      if (logical->op_kind() == OpKind::kNestJoin) {
        spec.func = logical->func();
        spec.label = logical->label();
      }

      EquiKeySplit split = SplitEquiKeys(logical->pred(), spec.left_var,
                                         spec.right_var);
      JoinImpl impl = options_.join_impl;
      if (split.left_keys.empty()) {
        impl = JoinImpl::kNestedLoop;  // only general implementation
      } else if (impl == JoinImpl::kAuto) {
        const double l = EstimateCardinality(*logical->left());
        const double r = EstimateCardinality(*logical->right());
        const double nl_cost = l * r;
        const double hash_cost =
            (l + r) / std::max(1, options_.num_threads);
        const double merge_cost =
            l * std::log2(l + 2.0) + r * std::log2(r + 2.0);
        if (hash_cost <= merge_cost && hash_cost <= nl_cost) {
          impl = JoinImpl::kHash;
        } else if (merge_cost <= nl_cost) {
          impl = JoinImpl::kMerge;
        } else {
          impl = JoinImpl::kNestedLoop;
        }
      }

      switch (impl) {
        case JoinImpl::kNestedLoop: {
          spec.pred = logical->pred();  // full predicate
          return PhysicalOpPtr(new NestedLoopJoinOp(
              std::move(left), std::move(right), std::move(spec)));
        }
        case JoinImpl::kHash: {
          spec.pred = split.residual;
          std::optional<FastKeySpec> fast;
          if (options_.enable_columnar) {
            fast = ResolveFastKeys(split.left_keys, split.right_keys,
                                   spec.left_var, spec.right_var);
          }
          return PhysicalOpPtr(new HashJoinOp(
              std::move(left), std::move(right), std::move(spec),
              std::move(split.left_keys), std::move(split.right_keys),
              std::move(fast)));
        }
        case JoinImpl::kMerge: {
          spec.pred = split.residual;
          return PhysicalOpPtr(new MergeJoinOp(
              std::move(left), std::move(right), std::move(spec),
              std::move(split.left_keys), std::move(split.right_keys)));
        }
        case JoinImpl::kAuto:
          break;
      }
      return Status::Internal("join implementation not resolved");
    }
    case OpKind::kNest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      return PhysicalOpPtr(new NestOp(
          std::move(child), logical->group_attrs(), logical->var(),
          logical->func(), logical->label(), logical->null_group_to_empty()));
    }
    case OpKind::kUnnest: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr child, Plan(logical->input()));
      return PhysicalOpPtr(
          new UnnestOp(std::move(child), logical->unnest_attr()));
    }
    case OpKind::kUnion: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, Plan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right, Plan(logical->right()));
      return PhysicalOpPtr(new UnionOp(std::move(left), std::move(right)));
    }
    case OpKind::kDifference: {
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr left, Plan(logical->left()));
      TMDB_ASSIGN_OR_RETURN(PhysicalOpPtr right, Plan(logical->right()));
      return PhysicalOpPtr(new DifferenceOp(std::move(left), std::move(right)));
    }
  }
  return Status::Internal("unhandled logical operator in Planner");
}

namespace {

/// True when any operator in the plan (or a nested block reachable through
/// an uncorrelated subplan) embeds a kSubplan expression — i.e. the
/// unnesting rewrites are not a no-op for this query.
bool PlanHasSubplans(const LogicalOp& op) {
  std::vector<const Expr*> exprs;
  switch (op.op_kind()) {
    case OpKind::kSelect:
      exprs.push_back(&op.pred());
      break;
    case OpKind::kMap:
    case OpKind::kNest:
    case OpKind::kExprSource:
      exprs.push_back(&op.func());
      break;
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
      exprs.push_back(&op.pred());
      break;
    case OpKind::kNestJoin:
      exprs.push_back(&op.pred());
      exprs.push_back(&op.func());
      break;
    default:
      break;
  }
  for (const Expr* expr : exprs) {
    if (!CollectSubplans(*expr).empty()) return true;
  }
  for (const LogicalOpPtr& child : op.inputs()) {
    if (PlanHasSubplans(*child)) return true;
  }
  return false;
}

std::string FmtEstimate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string FmtRatio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace

std::string StrategyDecision::ToTable() const {
  if (!costed) {
    return StrCat("  (not costed: ", reason, ")\n");
  }
  std::string out;
  out += StrCat("  ", PadRight("candidate", 16), PadRight("est. cost", 14),
                "est. rows\n");
  for (const StrategyAlternative& alt : alternatives) {
    const char* marker = (alt.feasible && alt.strategy == chosen) ? "* " : "  ";
    out += StrCat(marker, PadRight(StrategyName(alt.strategy), 16));
    if (alt.feasible) {
      out += StrCat(PadRight(FmtEstimate(alt.est_cost), 14),
                    FmtEstimate(alt.est_rows), "\n");
    } else {
      out += StrCat("infeasible: ", alt.note, "\n");
    }
  }
  out += StrCat("  estimate: ~", est_distinct_corr,
                " distinct correlation value(s) over ", outer_rows,
                " outer row(s), est. hit ratio ", FmtRatio(est_hit_ratio),
                "\n");
  out += StrCat("  chosen: ", StrategyName(chosen), " -- ", reason, "\n");
  return out;
}

bool StrategyDecision::BestUnnested(Strategy* out) const {
  bool found = false;
  double best = 0;
  for (const StrategyAlternative& alt : alternatives) {
    if (!alt.feasible || alt.strategy == Strategy::kNaive) continue;
    if (!found || alt.est_cost < best) {
      found = true;
      best = alt.est_cost;
      *out = alt.strategy;
    }
  }
  return found;
}

Result<StrategyDecision> ChooseStrategy(const LogicalOpPtr& naive_plan,
                                        const CostModel& model) {
  StrategyDecision decision;
  if (!PlanHasSubplans(*naive_plan)) {
    decision.chosen = Strategy::kNestJoin;
    decision.costed = false;
    decision.reason = "no nested subqueries; the unnesting rewrite is a no-op";
    return decision;
  }
  decision.costed = true;
  TMDB_ASSIGN_OR_RETURN(std::optional<CorrelationEstimate> corr,
                        model.EstimateCorrelation(*naive_plan));
  if (corr.has_value()) {
    decision.outer_rows = corr->outer_rows;
    decision.est_distinct_corr = corr->distinct.estimate;
    decision.est_hit_ratio = corr->hit_ratio;
  }
  // Enumeration order is also the tie-break order: a strict `<` comparison
  // means equal-cost candidates resolve to the earliest, so ties prefer the
  // unnested strategies (the paper's default). Kim's algorithm is excluded
  // from the candidate set: it reproduces the COUNT bug by design.
  const Strategy candidates[] = {Strategy::kNestJoin, Strategy::kNestJoinOnly,
                                 Strategy::kOuterJoin, Strategy::kNaive};
  bool have_best = false;
  double best_cost = 0;
  for (Strategy s : candidates) {
    StrategyAlternative alt;
    alt.strategy = s;
    Result<LogicalOpPtr> rewritten = PlanForStrategy(naive_plan, s);
    if (!rewritten.ok()) {
      alt.feasible = false;
      alt.note = rewritten.status().message();
      decision.alternatives.push_back(std::move(alt));
      continue;
    }
    // A costing failure is a hard error, not infeasibility: sampling runs
    // guard checkpoints, so cancellation / deadlines / injected faults must
    // abort the choice (and the query) rather than silently skew it.
    TMDB_ASSIGN_OR_RETURN(PlanCost cost, model.CostPlan(**rewritten));
    alt.est_rows = cost.rows;
    alt.est_cost = cost.cost;
    if (!have_best || alt.est_cost < best_cost) {
      have_best = true;
      best_cost = alt.est_cost;
      decision.chosen = s;
    }
    decision.alternatives.push_back(std::move(alt));
  }
  if (!have_best) {
    return Status::Internal(
        "strategy enumeration found no feasible candidate (naive should "
        "always be feasible)");
  }
  if (decision.chosen == Strategy::kNaive) {
    decision.reason = StrCat(
        "memoized naive evaluation: ~", decision.est_distinct_corr,
        " distinct correlation value(s) across ", decision.outer_rows,
        " outer row(s) (est. hit ratio ", FmtRatio(decision.est_hit_ratio),
        ")");
  } else {
    double naive_cost = -1;
    for (const StrategyAlternative& alt : decision.alternatives) {
      if (alt.feasible && alt.strategy == Strategy::kNaive) {
        naive_cost = alt.est_cost;
      }
    }
    if (naive_cost > 0 && best_cost > 0) {
      decision.reason = StrCat(
          "unnesting is ~", FmtEstimate(naive_cost / best_cost),
          "x cheaper than memoized naive (est. hit ratio ",
          FmtRatio(decision.est_hit_ratio), ")");
    } else {
      decision.reason = "lowest estimated cost among feasible strategies";
    }
  }
  return decision;
}

}  // namespace tmdb
