// TCP query service over the paper's example databases.
//
//   ./build/examples/query_service [port] [max_concurrent]
//
// Binds 127.0.0.1:<port> (default 7744; 0 picks an ephemeral port and
// prints it), loads the Section 2 R/S and Section 3 company tables, and
// serves the framed protocol in src/net/wire.h until SIGINT/SIGTERM.
// Point ./build/examples/query_client at it.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/database.h"
#include "net/server.h"
#include "workload/generators.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void CheckSetup(const tmdb::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "setup error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int port = 7744;
  if (argc > 1) port = std::atoi(argv[1]);

  tmdb::Database db;
  tmdb::CountBugConfig rs;
  rs.num_r = 50;
  rs.num_s = 100;
  CheckSetup(LoadCountBugTables(&db, rs));
  tmdb::CompanyConfig company;
  company.num_depts = 5;
  company.num_emps = 30;
  CheckSetup(LoadCompanyTables(&db, company));

  tmdb::ServerOptions options;
  options.port = port;
  if (argc > 2) options.admission.max_concurrent = std::atoi(argv[2]);

  tmdb::QueryServer server(&db, options);
  CheckSetup(server.Start());
  std::printf("query service on 127.0.0.1:%d (tables R, S, EMP, DEPT; "
              "%d concurrent queries, queue depth %d)\n",
              server.port(), options.admission.max_concurrent,
              options.admission.max_queue_depth);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("shutting down...\n");
  server.Shutdown();
  const tmdb::ServerStatsSnapshot stats = server.stats();
  std::printf("served %llu queries (%llu ok, %llu error, %llu rejected, "
              "%llu disconnected) on %llu connections\n",
              static_cast<unsigned long long>(stats.queries_started),
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.queries_error),
              static_cast<unsigned long long>(stats.queries_rejected),
              static_cast<unsigned long long>(stats.queries_disconnected),
              static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}
