// Interactive SFW shell over the paper's example databases.
//
//   ./build/examples/repl
//
// Statements:
//   SELECT ... / CREATE TABLE ... / DEFINE SORT ... / INSERT INTO ... VALUES
// Commands:
//   \strategy <name>       auto | naive | kim | outerjoin | nestjoin |
//                          nestjoin-only (auto = cost-based choice with the
//                          mid-query adaptive switch)
//   \threads <n>           per-query max-parallelism cap over the shared
//                          work-stealing scheduler (default 1 = serial)
//   \timeout <ms>          per-query wall-clock limit, 0 = unlimited
//   \memlimit <bytes>      per-query materialisation budget, 0 = unlimited
//   \maxrows <n>           per-query processed-row budget, 0 = unlimited
//   \spill on|off [dir]    spill joins to disk when the budget trips
//   \subcache <bytes>      correlated-subplan memo budget, 0 = off
//   \columnar on|off       columnar scan/filter/join fast paths (default on)
//   \explain <query>       show naive plan, rewrite decisions, final plans
//   \tables                list tables and schemas
//   \stats on|off|<empty>  per-query counters: toggle auto-print, or show
//                          the last query's (subplan cache hits/misses/
//                          evictions, spill partitions, guard checkpoints,
//                          scheduler morsels dispatched/stolen)
//   \quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "base/string_util.h"
#include "core/database.h"
#include "workload/generators.h"

namespace {

using tmdb::Database;
using tmdb::RunOptions;
using tmdb::Status;
using tmdb::StrategyName;
using tmdb::Strategy;

void CheckSetup(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "setup error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;
  // The Section 2 R/S schema and the Section 3 company schema side by side.
  tmdb::CountBugConfig rs;
  rs.num_r = 50;
  rs.num_s = 100;
  CheckSetup(LoadCountBugTables(&db, rs));
  tmdb::CompanyConfig company;
  company.num_depts = 5;
  company.num_emps = 30;
  CheckSetup(LoadCompanyTables(&db, company));

  Strategy strategy = Strategy::kNestJoin;
  int num_threads = 1;
  long long timeout_ms = 0;
  unsigned long long memory_budget_bytes = 0;
  unsigned long long max_rows = 0;
  bool enable_spill = false;
  std::string spill_dir;
  bool enable_columnar = true;
  unsigned long long subplan_cache_bytes = RunOptions().subplan_cache_bytes;
  bool auto_stats = true;
  tmdb::ExecStats last_stats;

  std::printf("tmdb shell — tables R, S, EMP, DEPT loaded. \\quit to exit.\n");
  std::string line;
  while (true) {
    std::printf("tmdb(%s)> ", StrategyName(strategy).c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string input(tmdb::StripWhitespace(line));
    if (input.empty()) continue;

    if (input == "\\quit" || input == "\\q") break;
    if (input == "\\tables") {
      for (const std::string& name : db.catalog()->TableNames()) {
        auto table = db.catalog()->GetTable(name);
        if (table.ok()) {
          std::printf("  %s : %s (%zu rows)\n", name.c_str(),
                      (*table)->schema().ToString().c_str(),
                      (*table)->NumRows());
        }
      }
      continue;
    }
    if (input.rfind("\\stats", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(6)));
      if (arg == "on" || arg == "off") {
        auto_stats = arg == "on";
        std::printf("  stats auto-print = %s\n", arg.c_str());
      } else {
        std::printf("  %s\n", last_stats.ToString().c_str());
      }
      continue;
    }
    if (input.rfind("\\subcache", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(9)));
      long long bytes = std::atoll(arg.c_str());
      if (arg.empty() || bytes < 0) {
        std::printf("  \\subcache needs a byte count >= 0, got '%s'\n",
                    arg.c_str());
      } else {
        subplan_cache_bytes = static_cast<unsigned long long>(bytes);
        std::printf("  subplan cache = %lld bytes%s\n", bytes,
                    bytes == 0 ? " (memoization off)" : "");
      }
      continue;
    }
    if (input.rfind("\\strategy", 0) == 0) {
      std::string name(tmdb::StripWhitespace(input.substr(9)));
      if (!tmdb::ParseStrategyName(name, &strategy)) {
        std::printf("  unknown strategy '%s' (auto, naive, kim, outerjoin, "
                    "nestjoin, nestjoin-only)\n",
                    name.c_str());
      }
      continue;
    }
    if (input.rfind("\\threads", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(8)));
      int n = std::atoi(arg.c_str());
      if (n < 1) {
        std::printf("  \\threads needs a positive integer, got '%s'\n",
                    arg.c_str());
      } else {
        num_threads = n;
        std::printf("  num_threads = %d — max-parallelism cap on the shared "
                    "scheduler (results identical to serial)\n", n);
      }
      continue;
    }
    if (input.rfind("\\timeout", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(8)));
      long long ms = std::atoll(arg.c_str());
      if (arg.empty() || ms < 0) {
        std::printf("  \\timeout needs a millisecond count >= 0, got '%s'\n",
                    arg.c_str());
      } else {
        timeout_ms = ms;
        std::printf("  timeout = %lld ms%s\n", ms,
                    ms == 0 ? " (unlimited)" : "");
      }
      continue;
    }
    if (input.rfind("\\memlimit", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(9)));
      long long bytes = std::atoll(arg.c_str());
      if (arg.empty() || bytes < 0) {
        std::printf("  \\memlimit needs a byte count >= 0, got '%s'\n",
                    arg.c_str());
      } else {
        memory_budget_bytes = static_cast<unsigned long long>(bytes);
        std::printf("  memory budget = %lld bytes%s\n", bytes,
                    bytes == 0 ? " (unlimited)" : "");
      }
      continue;
    }
    if (input.rfind("\\maxrows", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(8)));
      long long rows = std::atoll(arg.c_str());
      if (arg.empty() || rows < 0) {
        std::printf("  \\maxrows needs a row count >= 0, got '%s'\n",
                    arg.c_str());
      } else {
        max_rows = static_cast<unsigned long long>(rows);
        std::printf("  max rows = %lld%s\n", rows,
                    rows == 0 ? " (unlimited)" : "");
      }
      continue;
    }
    if (input.rfind("\\spill", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(6)));
      std::string mode = arg;
      std::string dir;
      size_t space = arg.find(' ');
      if (space != std::string::npos) {
        mode = arg.substr(0, space);
        dir = std::string(tmdb::StripWhitespace(arg.substr(space + 1)));
      }
      if (mode == "on") {
        enable_spill = true;
        spill_dir = dir;
        std::printf("  spill = on (dir: %s)\n",
                    spill_dir.empty() ? "<system temp>" : spill_dir.c_str());
      } else if (mode == "off") {
        enable_spill = false;
        std::printf("  spill = off (memory trips fail fast)\n");
      } else {
        std::printf("  \\spill needs on|off [dir], got '%s'\n", arg.c_str());
      }
      continue;
    }
    if (input.rfind("\\columnar", 0) == 0) {
      std::string arg(tmdb::StripWhitespace(input.substr(9)));
      if (arg == "on" || arg == "off") {
        enable_columnar = arg == "on";
        std::printf("  columnar = %s\n", arg.c_str());
      } else {
        std::printf("  \\columnar needs on|off, got '%s'\n", arg.c_str());
      }
      continue;
    }
    if (input.rfind("\\explain", 0) == 0) {
      std::string query(tmdb::StripWhitespace(input.substr(8)));
      auto explained = db.Explain(query, strategy);
      std::printf("%s\n", explained.ok()
                              ? explained->c_str()
                              : explained.status().ToString().c_str());
      continue;
    }

    RunOptions options;
    options.strategy = strategy;
    options.num_threads = num_threads;
    options.timeout_ms = timeout_ms;
    options.memory_budget_bytes = memory_budget_bytes;
    options.max_rows = max_rows;
    options.enable_spill = enable_spill;
    options.spill_dir = spill_dir;
    options.subplan_cache_bytes = subplan_cache_bytes;
    options.enable_columnar = enable_columnar;
    auto result = db.Execute(input, options);
    if (!result.ok()) {
      // Same rendering the query server puts in its error frames: guard
      // trips read identically over the wire and in the shell.
      std::printf("  %s\n", tmdb::FormatStatusForUser(result.status()).c_str());
      continue;
    }
    std::printf("%s", result->ToString(20).c_str());
    if (result->is_query) {
      last_stats = result->query.stats;
      if (auto_stats) std::printf("  %s\n", last_stats.ToString().c_str());
    }
  }
  return 0;
}
