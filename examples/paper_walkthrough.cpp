// A guided, runnable walkthrough of the paper, section by section:
//
//   §2  nested SQL queries and the COUNT bug (Kim vs Ganski–Wong),
//   §4  the SUBSETEQ bug — grouping is needed beyond aggregates,
//   §5  SELECT-clause nesting and the UNNEST special case,
//   §6  the nest join: Table 1, and X ▵ Y = ν*(X ⟖ Y),
//   §7  Theorem 1 in action — semijoin/antijoin instead of grouping,
//   §8  the three-block pipeline.
//
//   ./build/examples/paper_walkthrough

#include <cstdio>
#include <string>

#include "core/database.h"
#include "workload/generators.h"

namespace {

using tmdb::Database;
using tmdb::RunOptions;
using tmdb::Strategy;

void Check(const tmdb::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(tmdb::Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

void Banner(const char* text) {
  std::printf("\n%s\n%s\n%s\n\n", std::string(74, '=').c_str(), text,
              std::string(74, '=').c_str());
}

size_t Rows(Database* db, const std::string& query, Strategy strategy) {
  RunOptions options;
  options.strategy = strategy;
  return Check(db->Run(query, options)).rows.size();
}

}  // namespace

int main() {
  Banner("Section 2 — nested SQL queries and the COUNT bug");
  {
    Database db;
    tmdb::CountBugConfig config;
    config.num_r = 300;
    config.num_s = 600;
    Check(LoadCountBugTables(&db, config));
    const std::string query =
        "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
        "WHERE x.c = y.c)";
    std::printf("query: %s\n\n", query.c_str());
    std::printf("  naive (ground truth): %3zu rows\n",
                Rows(&db, query, Strategy::kNaive));
    std::printf("  Kim's algorithm:      %3zu rows   <-- COUNT bug\n",
                Rows(&db, query, Strategy::kKim));
    std::printf("  Ganski-Wong:          %3zu rows\n",
                Rows(&db, query, Strategy::kOuterJoin));
    std::printf("  nest join:            %3zu rows\n",
                Rows(&db, query, Strategy::kNestJoin));
  }

  Banner("Section 4 — the general problem: x.a SUBSETEQ z (SUBSETEQ bug)");
  {
    Database db;
    tmdb::SubsetBugConfig config;
    config.num_x = 300;
    config.num_y = 600;
    Check(LoadSubsetBugTables(&db, config));
    const std::string query =
        "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
        "WHERE x.b = y.b)";
    std::printf("query: %s\n\n", query.c_str());
    std::printf("  naive: %3zu   Kim: %3zu (wrong)   nest join: %3zu\n",
                Rows(&db, query, Strategy::kNaive),
                Rows(&db, query, Strategy::kKim),
                Rows(&db, query, Strategy::kNestJoin));
  }

  Banner("Sections 5/6 — SELECT-clause nesting, Table 1, and EXPLAIN");
  {
    Database db;
    Check(db.ExecuteScript(
                "CREATE TABLE X (e : INT, d : INT);"
                "CREATE TABLE Y (a : INT, b : INT);"
                "INSERT INTO X VALUES (e = 1, d = 1), (e = 2, d = 2), "
                "(e = 3, d = 3);"
                "INSERT INTO Y VALUES (a = 1, b = 1), (a = 2, b = 1), "
                "(a = 3, b = 3)")
              .status());
    // The nest join, spelled as a SELECT-clause nesting over Table 1's data.
    auto result = Check(db.Run(
        "SELECT (e = x.e, d = x.d, s = SELECT y FROM Y y WHERE x.d = y.b) "
        "FROM X x"));
    std::printf("Table 1 via SELECT-clause nesting:\n%s\n",
                result.ToString().c_str());
    std::printf("%s\n",
                Check(db.Execute("EXPLAIN SELECT (e = x.e, s = SELECT y.a "
                                 "FROM Y y WHERE x.d = y.b) FROM X x"))
                    .message.c_str());
  }

  Banner("Section 7 — Theorem 1: flat joins where grouping is unnecessary");
  {
    Database db;
    tmdb::SubsetBugConfig config;
    Check(LoadSubsetBugTables(&db, config));
    for (const char* query :
         {"SELECT x.b FROM X x WHERE 3 IN (SELECT y.a FROM Y y "
          "WHERE x.b = y.b)",
          "SELECT x.b FROM X x WHERE x.a SUPSETEQ (SELECT y.a FROM Y y "
          "WHERE x.b = y.b)"}) {
      std::printf("%s\n",
                  Check(db.Execute(std::string("EXPLAIN ") + query))
                      .message.c_str());
    }
  }

  Banner("Section 8 — the three-block nest join pipeline");
  {
    Database db;
    tmdb::Section8Config config;
    Check(LoadSection8Tables(&db, config));
    const std::string query =
        "SELECT x FROM X x WHERE x.a SUBSETEQ ("
        "SELECT y.a FROM Y y WHERE x.b = y.b AND y.c SUBSETEQ ("
        "SELECT z.c FROM Z z WHERE y.d = z.d))";
    std::printf("%s\n",
                Check(db.Execute("EXPLAIN " + query)).message.c_str());
    std::printf("rows: naive = %zu, pipeline = %zu\n",
                Rows(&db, query, Strategy::kNaive),
                Rows(&db, query, Strategy::kNestJoin));
  }
  return 0;
}
