// Quickstart: create a database with a complex-object schema, load a few
// rows, and run nested queries under different optimization strategies.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"

namespace {

using tmdb::Database;
using tmdb::JoinImpl;
using tmdb::RunOptions;
using tmdb::Status;
using tmdb::Strategy;
using tmdb::Type;
using tmdb::Value;

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(tmdb::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  Database db;

  // R(a, b, c) and S(c, d) — the schemas from the paper's Section 2.
  Check(db.CreateTable("R", Type::Tuple({{"a", Type::Int()},
                                         {"b", Type::Int()},
                                         {"c", Type::Int()}}))
            .status());
  Check(db.CreateTable("S", Type::Tuple({{"c", Type::Int()},
                                         {"d", Type::Int()}}))
            .status());

  auto r_row = [](int64_t a, int64_t b, int64_t c) {
    return Value::Tuple({"a", "b", "c"},
                        {Value::Int(a), Value::Int(b), Value::Int(c)});
  };
  auto s_row = [](int64_t c, int64_t d) {
    return Value::Tuple({"c", "d"}, {Value::Int(c), Value::Int(d)});
  };
  Check(db.Insert("R", r_row(1, 2, 10)));
  Check(db.Insert("R", r_row(2, 0, 11)));  // dangling: no S row with c=11
  Check(db.Insert("R", r_row(3, 1, 12)));
  Check(db.Insert("S", s_row(10, 100)));
  Check(db.Insert("S", s_row(10, 101)));
  Check(db.Insert("S", s_row(12, 102)));

  // The paper's COUNT query: R rows whose b equals the number of matching
  // S rows. The dangling row (b = 0) belongs in the answer.
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";

  std::printf("query:\n  %s\n\n", query.c_str());

  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kKim, Strategy::kNestJoin}) {
    RunOptions options;
    options.strategy = strategy;
    auto result = Check(db.Run(query, options));
    std::printf("strategy %-10s -> %s",
                tmdb::StrategyName(strategy).c_str(),
                result.ToString().c_str());
    std::printf("   stats: %s\n\n", result.stats.ToString().c_str());
  }
  std::printf("note: Kim's strategy silently drops <a = 2, b = 0, c = 11> — "
              "the COUNT bug.\n\n");

  // EXPLAIN shows the naive plan, the rewritten plan, and the Table 2
  // classification that drove the rewrite.
  std::printf("%s\n",
              Check(db.Explain(query, Strategy::kNestJoin)).c_str());
  return 0;
}
