// Script runner: executes a .tmql file of ';'-separated statements
// (CREATE TABLE / DEFINE SORT / INSERT / EXPLAIN / queries) and prints
// each result.
//
//   ./build/examples/tmql_runner examples/company.tmql [strategy]
//
// With no arguments, runs the bundled demo script if found next to the
// current working directory.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/database.h"

namespace {

using tmdb::Database;
using tmdb::RunOptions;
using tmdb::Strategy;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "examples/company.tmql";
  RunOptions options;
  if (argc > 2) {
    const std::string name = argv[2];
    bool found = false;
    for (Strategy s :
         {Strategy::kNaive, Strategy::kKim, Strategy::kOuterJoin,
          Strategy::kNestJoin, Strategy::kNestJoinOnly}) {
      if (name == tmdb::StrategyName(s)) {
        options.strategy = s;
        found = true;
      }
    }
    if (!found) return Fail("unknown strategy '" + name + "'");
  }

  std::ifstream file(path);
  if (!file) return Fail("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();

  Database db;
  auto results = db.ExecuteScript(buffer.str(), options);
  if (!results.ok()) return Fail(results.status().ToString());
  for (const tmdb::StatementResult& result : *results) {
    std::printf("%s\n", result.ToString(25).c_str());
  }
  return 0;
}
