// Unnesting explorer: walks the Table 2 predicate catalog and shows, for
// each nested query, the naive plan, the classification the rewriter
// derived, the rewritten plan, and the measured work of both — a guided
// tour of the paper's contribution.
//
//   ./build/examples/unnesting_explorer            # the whole catalog
//   ./build/examples/unnesting_explorer "<query>"  # explain one query

#include <cstdio>
#include <string>

#include "base/random.h"
#include "core/database.h"

namespace {

using tmdb::Database;
using tmdb::Random;
using tmdb::RunOptions;
using tmdb::Status;
using tmdb::Strategy;
using tmdb::Type;
using tmdb::Value;

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void LoadData(Database* db) {
  Check(db->CreateTable("X", Type::Tuple({{"a", Type::Set(Type::Int())},
                                          {"b", Type::Int()},
                                          {"c", Type::Int()}}))
            .status());
  Check(db->CreateTable("Y", Type::Tuple({{"a", Type::Int()},
                                          {"b", Type::Int()}}))
            .status());
  Random rng(11);
  for (int i = 0; i < 50; ++i) {
    std::vector<Value> elems;
    for (size_t k = rng.Uniform(4); k > 0; --k) {
      elems.push_back(Value::Int(rng.UniformInt(0, 5)));
    }
    Check(db->Insert("X", Value::Tuple({"a", "b", "c"},
                                       {Value::Set(std::move(elems)),
                                        Value::Int(rng.UniformInt(0, 12)),
                                        Value::Int(i)})));
  }
  for (int i = 0; i < 80; ++i) {
    Status s = db->Insert(
        "Y", Value::Tuple({"a", "b"}, {Value::Int(rng.UniformInt(0, 5)),
                                       Value::Int(rng.UniformInt(0, 12))}));
    if (s.code() != tmdb::StatusCode::kAlreadyExists) Check(s);
  }
}

void Explore(Database* db, const std::string& query) {
  auto explained = db->Explain(query, Strategy::kNestJoin);
  if (!explained.ok()) {
    std::printf("could not plan: %s\n\n",
                explained.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", explained->c_str());

  // Compare the measured work of naive vs rewritten execution.
  for (Strategy strategy : {Strategy::kNaive, Strategy::kNestJoin}) {
    RunOptions options;
    options.strategy = strategy;
    auto result = db->Run(query, options);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", tmdb::StrategyName(strategy).c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s: %3zu rows, %s\n",
                tmdb::StrategyName(strategy).c_str(), result->rows.size(),
                result->stats.ToString().c_str());
  }
  std::printf("\n%s\n\n", std::string(78, '=').c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  LoadData(&db);

  if (argc > 1) {
    Explore(&db, argv[1]);
    return 0;
  }

  const char* tour[] = {
      // semijoin
      "SELECT x.c FROM X x WHERE x.c IN (SELECT y.a FROM Y y WHERE x.b = y.b)",
      // antijoin via count(z) = 0
      "SELECT x.c FROM X x WHERE count(SELECT y.a FROM Y y WHERE x.b = y.b) = 0",
      // antijoin via ⊇
      "SELECT x.c FROM X x WHERE x.a SUPSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)",
      // nest join: the COUNT-bug predicate
      "SELECT x.c FROM X x WHERE x.c = count(SELECT y.a FROM Y y WHERE x.b = y.b)",
      // nest join: the SUBSETEQ-bug predicate
      "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)",
      // SELECT-clause nesting
      "SELECT (c = x.c, zs = SELECT y.a FROM Y y WHERE x.b = y.b) FROM X x",
      // the UNNEST special case
      "UNNEST(SELECT (SELECT (c = x.c, a = y.a) FROM Y y WHERE x.b = y.b) FROM X x)",
  };
  for (const char* query : tour) {
    Explore(&db, query);
  }
  return 0;
}
