// CLI client for the TCP query service.
//
//   ./build/examples/query_client [host] [port] ["one-shot query"]
//
// With a query argument, runs it and exits (exit code 0 only on success).
// Without one, drops into a small shell:
//   \strategy <name>   naive | kim | outerjoin | nestjoin | nestjoin-only
//   \timeout <ms>      per-query wall-clock limit sent to the server
//   \maxrows <n>       per-query processed-row budget sent to the server
//   \retries <n>       attempts when the server answers REJECTED (default 5)
//   \stats             print the last query's ExecStats
//   \quit
//
// Admission rejections are retried with exponential backoff seeded by the
// server's retry_after_ms hint; every other failure prints the server's
// canonical error rendering and keeps the session.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/client.h"

namespace {

using tmdb::ClientResult;
using tmdb::QueryClient;
using tmdb::WireRequest;

int RunOne(QueryClient* client, const WireRequest& request, int max_attempts,
           tmdb::ExecStats* last_stats) {
  tmdb::Result<ClientResult> result =
      client->RunWithRetry(request, max_attempts);
  if (!result.ok()) {
    if (QueryClient::WasRejected(result.status())) {
      std::printf("  rejected after %d attempts: %s\n", max_attempts,
                  result.status().message().c_str());
    } else {
      // The message is already FormatStatusForUser output from the server.
      std::printf("  %s\n", result.status().message().c_str());
    }
    return 1;
  }
  if (!result->message.empty()) {
    std::printf("%s\n", result->message.c_str());
  }
  for (const tmdb::Value& row : result->rows) {
    std::printf("%s\n", row.ToString().c_str());
  }
  std::printf("  (%zu rows)\n", result->rows.size());
  *last_stats = result->stats;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string host = argc > 1 ? argv[1] : "127.0.0.1";
  const int port = argc > 2 ? std::atoi(argv[2]) : 7744;

  QueryClient client;
  if (tmdb::Status connected = client.Connect(host, port); !connected.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 connected.ToString().c_str());
    return 1;
  }

  WireRequest request;
  int max_attempts = 5;
  tmdb::ExecStats last_stats;

  if (argc > 3) {
    request.query = argv[3];
    return RunOne(&client, request, max_attempts, &last_stats);
  }

  std::printf("connected to %s:%d — \\quit to exit.\n", host.c_str(), port);
  std::string line;
  for (;;) {
    std::printf("tmdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\stats") {
      std::printf("  %s\n", last_stats.ToString().c_str());
      continue;
    }
    if (line.rfind("\\strategy ", 0) == 0) {
      request.strategy = line.substr(10);
      std::printf("  strategy = %s\n", request.strategy.c_str());
      continue;
    }
    if (line.rfind("\\timeout ", 0) == 0) {
      request.timeout_ms =
          static_cast<uint64_t>(std::atoll(line.substr(9).c_str()));
      continue;
    }
    if (line.rfind("\\maxrows ", 0) == 0) {
      request.max_rows =
          static_cast<uint64_t>(std::atoll(line.substr(9).c_str()));
      continue;
    }
    if (line.rfind("\\retries ", 0) == 0) {
      max_attempts = std::atoi(line.substr(9).c_str());
      if (max_attempts < 1) max_attempts = 1;
      continue;
    }
    request.query = line;
    RunOne(&client, request, max_attempts, &last_stats);
    if (!client.connected()) {
      std::printf("connection lost\n");
      return 1;
    }
  }
  client.Close();
  return 0;
}
