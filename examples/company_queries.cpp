// The paper's Section 3 company schema and example queries Q1 and Q2,
// exercised end to end on generated data: complex-object attributes
// (nested address tuples, set-valued children/emps), nesting in the WHERE
// clause over a set-valued attribute (Q1 — not flattened, per the paper)
// and nesting in the SELECT clause (Q2 — nest join).
//
//   ./build/examples/company_queries

#include <cstdio>

#include "core/database.h"
#include "workload/generators.h"

namespace {

using tmdb::CompanyConfig;
using tmdb::Database;
using tmdb::LoadCompanyTables;
using tmdb::RunOptions;
using tmdb::Strategy;

void Check(const tmdb::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(tmdb::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void RunAndShow(Database* db, const char* title, const std::string& query,
                Strategy strategy) {
  std::printf("---- %s ----\n%s\n", title, query.c_str());
  RunOptions options;
  options.strategy = strategy;
  auto result = Check(db->Run(query, options));
  std::printf("%s\n", result.ToString(8).c_str());
}

}  // namespace

int main() {
  Database db;
  CompanyConfig config;
  config.num_depts = 6;
  config.num_emps = 40;
  config.num_cities = 3;
  Check(LoadCompanyTables(&db, config));

  // Q1 (paper Section 3.2): departments that have at least one employee
  // (by name, via the set-valued emps attribute) living in the same city
  // the department is located. The paper's original compares address
  // tuples of members of d.emps; with emps storing names here, we join
  // through EMP. The set-valued iteration FROM d.emps stays nested —
  // "there is no use to flatten" (Section 3.2).
  const std::string q1 =
      "SELECT d.dname FROM DEPT d WHERE "
      "EXISTS e IN (SELECT m FROM EMP m WHERE m.name IN "
      "(SELECT n FROM d.emps n)) (e.address.city = d.address.city)";
  RunAndShow(&db, "Q1: departments with a local employee", q1,
             Strategy::kNestJoin);

  // Q2 (paper Section 3.2): for every department, its name and the
  // employees living in the department's city — SELECT-clause nesting,
  // processed by a nest join.
  const std::string q2 =
      "SELECT (dname = d.dname, emps = SELECT e.name FROM EMP e "
      "WHERE e.address.city = d.address.city) FROM DEPT d";
  RunAndShow(&db, "Q2: departments with co-located employees", q2,
             Strategy::kNestJoin);

  // Bonus: employees with at least 2 children, showing nested set-valued
  // attributes in predicates.
  const std::string q3 =
      "SELECT (name = e.name, kids = count(e.children)) FROM EMP e "
      "WHERE count(e.children) >= 2";
  RunAndShow(&db, "Q3: employees with at least two children", q3,
             Strategy::kNestJoin);

  // Show how Q2 is planned: the subquery becomes a nest join.
  std::printf("---- EXPLAIN Q2 ----\n%s\n",
              Check(db.Explain(q2, Strategy::kNestJoin)).c_str());
  return 0;
}
