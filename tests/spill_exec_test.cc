// Graceful degradation under memory pressure, end to end: hash/nest joins
// whose build side dwarfs the memory budget complete by Grace-style
// recursive partitioning to disk, with results BIT-IDENTICAL (same rows,
// same order) to the unbudgeted in-memory run, serial and parallel alike.
// Injected I/O faults on any spill read/write unwind to a clean kIoError
// with zero leaked temp files and a reusable executor; injected unlink
// failures never affect the query. The paper's bug queries (COUNT bug,
// SUBSETEQ bug) keep their exact semantics while spilling multiple levels
// deep. Plus the ValueMemory phantom-charge regression: NestOp's parallel
// path must refund its stage-1 scratch.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injector.h"
#include "base/random.h"
#include "catalog/table.h"
#include "core/database.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/nest_op.h"
#include "exec/query_guard.h"
#include "sched/scheduler.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

namespace fs = std::filesystem;
using testutil::IntRow;
using testutil::RowsEqual;

/// A per-test spill base directory, so "no leaked temp files" is checkable
/// as "this directory is empty".
std::string MakeSpillBase(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("tmdb-test-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

::testing::AssertionResult SpillBaseEmpty(const std::string& base) {
  if (!fs::exists(base)) return ::testing::AssertionSuccess();
  for (const auto& entry : fs::directory_iterator(base)) {
    return ::testing::AssertionFailure()
           << "leaked spill artefact: " << entry.path().string();
  }
  return ::testing::AssertionSuccess();
}

/// Exact-sequence equality — the spill path must reproduce the in-memory
/// output bit for bit, order included.
::testing::AssertionResult BitIdentical(const std::vector<Value>& actual,
                                        const std::vector<Value>& expected) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << actual.size() << " vs "
           << expected.size();
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    if (!actual[i].Equals(expected[i])) {
      return ::testing::AssertionFailure()
             << "row " << i << " differs: " << actual[i].ToString() << " vs "
             << expected[i].ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------- op-level spilled joins

/// Build side: fat rows (a 160-byte pad) so a few thousand of them dwarf a
/// small budget. Probe side: few skinny rows, near-unique keys, so the
/// *output* stays far under the budget — spilling relieves build residency,
/// it cannot shrink the result itself.
class SpillJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(101);
    TMDB_ASSERT_OK_AND_ASSIGN(
        left_, Table::Create("L", Type::Tuple({{"e", Type::Int()},
                                               {"d", Type::Int()}})));
    // Few probe rows with near-unique keys on both sides: even the
    // output-every-left-row modes (nest join, left outer, anti) emit only
    // ~80 rows, keeping the result far below the budget — spilling relieves
    // build residency; it cannot shrink the result itself.
    for (int i = 0; i < 80; ++i) {
      TMDB_ASSERT_OK(left_->Insert(
          IntRow({"e", "d"}, {i, rng.UniformInt(0, 100000)})));
    }
    TMDB_ASSERT_OK_AND_ASSIGN(
        right_,
        Table::Create("R", Type::Tuple({{"a", Type::Int()},
                                        {"b", Type::Int()},
                                        {"pad", Type::String()}})));
    const std::string pad(160, 'p');
    for (int i = 0; i < 6000; ++i) {
      TMDB_ASSERT_OK(right_->Insert(Value::Tuple(
          {"a", "b", "pad"},
          {Value::Int(i), Value::Int(rng.UniformInt(0, 100000)),
           Value::String(pad)})));
    }
  }

  PhysicalOpPtr MakeJoin(JoinMode mode) const {
    Expr xv = Expr::Var("x", left_->schema());
    Expr yv = Expr::Var("y", right_->schema());
    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = right_->schema();
    spec.pred = Expr::True();
    // Nest join nests only the key attribute, keeping outputs skinny.
    spec.func = Expr::Must(Expr::Field(yv, "a"));
    spec.label = "s";
    return PhysicalOpPtr(new HashJoinOp(
        PhysicalOpPtr(new TableScanOp(left_)),
        PhysicalOpPtr(new TableScanOp(right_)), std::move(spec),
        {Expr::Must(Expr::Field(xv, "d"))},
        {Expr::Must(Expr::Field(yv, "b"))}));
  }

  PhysicalOpPtr MakeMergeJoin(JoinMode mode) const {
    Expr xv = Expr::Var("x", left_->schema());
    Expr yv = Expr::Var("y", right_->schema());
    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = right_->schema();
    spec.pred = Expr::True();
    spec.func = Expr::Must(Expr::Field(yv, "a"));
    spec.label = "s";
    return PhysicalOpPtr(new MergeJoinOp(
        PhysicalOpPtr(new TableScanOp(left_)),
        PhysicalOpPtr(new TableScanOp(right_)), std::move(spec),
        {Expr::Must(Expr::Field(xv, "d"))},
        {Expr::Must(Expr::Field(yv, "b"))}));
  }

  static constexpr uint64_t kBudget = 128 << 10;  // build side is ~8-20× this

  std::shared_ptr<Table> left_;
  std::shared_ptr<Table> right_;
};

TEST_F(SpillJoinTest, AllModesSpillBitIdenticalSerialAndParallel) {
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kSemi, JoinMode::kAnti,
                        JoinMode::kLeftOuter, JoinMode::kNestJoin}) {
    SCOPED_TRACE(JoinModeName(mode));
    PhysicalOpPtr plan = MakeJoin(mode);

    Executor reference(1);
    TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> baseline,
                              reference.RunPhysical(plan.get()));
    EXPECT_EQ(reference.stats().spill_partitions, 0u);

    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const std::string base =
          MakeSpillBase("join-" + JoinModeName(mode) + "-t" +
                        std::to_string(threads));
      Executor executor(threads);
      GuardLimits limits;
      limits.memory_budget_bytes = kBudget;
      executor.set_limits(limits);
      executor.set_spill_options(true, base, /*block_bytes=*/4096);
      executor.mutable_stats()->Reset();

      TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> spilled,
                                executor.RunPhysical(plan.get()));
      EXPECT_TRUE(BitIdentical(spilled, baseline));
      EXPECT_GT(executor.stats().spill_partitions, 0u)
          << "budget never engaged the spill path";
      EXPECT_GT(executor.stats().spill_bytes_written, 0u);
      EXPECT_GT(executor.stats().spill_bytes_read, 0u);
      EXPECT_TRUE(SpillBaseEmpty(base));
      fs::remove_all(base);
    }
  }
}

TEST_F(SpillJoinTest, BuildFarOverBudgetRecursesMultipleLevels) {
  PhysicalOpPtr plan = MakeJoin(JoinMode::kNestJoin);
  Executor reference(1);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> baseline,
                            reference.RunPhysical(plan.get()));

  const std::string base = MakeSpillBase("multilevel");
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = 160 << 10;  // level-0 partitions still overflow
  executor.set_limits(limits);
  executor.set_spill_options(true, base, 4096);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> spilled,
                            executor.RunPhysical(plan.get()));
  EXPECT_TRUE(BitIdentical(spilled, baseline));
  EXPECT_GE(executor.stats().spill_max_depth, 2u)
      << "budget did not force recursive partitioning; stats: "
      << executor.stats().ToString();
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

TEST_F(SpillJoinTest, SpillDisabledStillFailsFast) {
  PhysicalOpPtr plan = MakeJoin(JoinMode::kNestJoin);
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = kBudget;
  executor.set_limits(limits);  // spill NOT enabled
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
}

TEST_F(SpillJoinTest, MaxRowsTripIsNeverSpilled) {
  // max_rows surfaces as the same kResourceExhausted, but disk cannot help
  // a work bound: the spill path must not engage.
  PhysicalOpPtr plan = MakeJoin(JoinMode::kInner);
  const std::string base = MakeSpillBase("maxrows");
  Executor executor(1);
  GuardLimits limits;
  limits.max_rows = 500;
  executor.set_limits(limits);
  executor.set_spill_options(true, base, 4096);
  executor.mutable_stats()->Reset();
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
  EXPECT_EQ(executor.stats().spill_partitions, 0u);
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

// ---------------------------------------------- merge join external sort

TEST_F(SpillJoinTest, MergeJoinAllModesExternalSortBitIdentical) {
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kSemi, JoinMode::kAnti,
                        JoinMode::kLeftOuter, JoinMode::kNestJoin}) {
    SCOPED_TRACE(JoinModeName(mode));
    PhysicalOpPtr plan = MakeMergeJoin(mode);

    Executor reference(1);
    TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> baseline,
                              reference.RunPhysical(plan.get()));
    EXPECT_EQ(reference.stats().spill_sort_runs, 0u);

    for (int threads : {1, 2}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const std::string base =
          MakeSpillBase("mj-" + JoinModeName(mode) + "-t" +
                        std::to_string(threads));
      Executor executor(threads);
      GuardLimits limits;
      limits.memory_budget_bytes = kBudget;
      executor.set_limits(limits);
      executor.set_spill_options(true, base, /*block_bytes=*/4096);
      executor.mutable_stats()->Reset();

      TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> spilled,
                                executor.RunPhysical(plan.get()));
      EXPECT_TRUE(BitIdentical(spilled, baseline));
      EXPECT_GT(executor.stats().spill_sort_runs, 0u)
          << "budget never engaged the external sort: "
          << executor.stats().ToString();
      EXPECT_GT(executor.stats().spill_bytes_written, 0u);
      EXPECT_GT(executor.stats().spill_bytes_read, 0u);
      EXPECT_EQ(executor.stats().rows_emitted, reference.stats().rows_emitted);
      EXPECT_TRUE(SpillBaseEmpty(base));
      fs::remove_all(base);
    }
  }
}

TEST_F(SpillJoinTest, MergeJoinSpillDisabledStillFailsFast) {
  PhysicalOpPtr plan = MakeMergeJoin(JoinMode::kNestJoin);
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = kBudget;
  executor.set_limits(limits);  // spill NOT enabled
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
}

// ----------------------------------------------- ν grouped-materialisation

/// Many input rows in a small group-key domain: the drain's slot charges
/// dwarf the budget long before grouping starts, while a tiny element
/// domain (c ∈ [0,5), deduped by set semantics at emit) keeps the grouped
/// *output* far below it — spilling relieves input residency; it cannot
/// shrink the result.
class SpillNestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(77);
    TMDB_ASSERT_OK_AND_ASSIGN(
        table_, Table::Create("T", Type::Tuple({{"a", Type::Int()},
                                                {"b", Type::Int()},
                                                {"c", Type::Int()}})));
    for (int i = 0; i < 12000; ++i) {
      TMDB_ASSERT_OK(table_->Insert(IntRow(
          {"a", "b", "c"}, {i, rng.UniformInt(0, 40), i % 5})));
    }
  }

  PhysicalOpPtr MakeNest() const {
    Expr j = Expr::Var("j", table_->schema());
    return PhysicalOpPtr(new NestOp(
        PhysicalOpPtr(new TableScanOp(table_)), {"b"}, "j",
        Expr::Must(Expr::Field(j, "c")), "s",
        /*null_group_to_empty=*/false));
  }

  static constexpr uint64_t kBudget = 128 << 10;

  std::shared_ptr<Table> table_;
};

TEST_F(SpillNestTest, GroupingSpillsBitIdenticalSerialAndParallel) {
  PhysicalOpPtr plan = MakeNest();
  Executor reference(1);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> baseline,
                            reference.RunPhysical(plan.get()));
  EXPECT_EQ(reference.stats().spill_partitions, 0u);

  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string base = MakeSpillBase("nest-t" + std::to_string(threads));
    Executor executor(threads);
    GuardLimits limits;
    limits.memory_budget_bytes = kBudget;
    executor.set_limits(limits);
    executor.set_spill_options(true, base, /*block_bytes=*/4096);
    executor.mutable_stats()->Reset();

    TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> spilled,
                              executor.RunPhysical(plan.get()));
    EXPECT_TRUE(BitIdentical(spilled, baseline));
    EXPECT_GT(executor.stats().spill_partitions, 0u)
        << "budget never engaged the ν spill path: "
        << executor.stats().ToString();
    EXPECT_GT(executor.stats().spill_bytes_written, 0u);
    EXPECT_GT(executor.stats().spill_bytes_read, 0u);
    EXPECT_EQ(executor.stats().rows_emitted, reference.stats().rows_emitted);
    EXPECT_TRUE(SpillBaseEmpty(base));
    fs::remove_all(base);
  }
}

TEST_F(SpillNestTest, NuStarNullPaddingDroppedAcrossSpill) {
  // ν* variant: all-NULL padded elements (outerjoin dangles) must become
  // empty sets — not lost rows, not sets holding a null — even when the
  // grouping spills; the padding check runs on decoded spill records too.
  Random rng(99);
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto padded,
      Table::Create("P",
                    Type::Tuple({{"id", Type::Int()},
                                 {"k", Type::Int()},
                                 {"p", Type::Tuple({{"q", Type::Int()}})}})));
  for (int i = 0; i < 12000; ++i) {
    const int k = rng.UniformInt(0, 40);
    const bool dangle = k >= 30;  // keys 30..39 carry only padding
    TMDB_ASSERT_OK(padded->Insert(Value::Tuple(
        {"id", "k", "p"},
        {Value::Int(i), Value::Int(k),
         Value::Tuple({"q"},
                      {dangle ? Value::Null() : Value::Int(i % 5)})})));
  }
  Expr row = Expr::Var("t", padded->schema());
  PhysicalOpPtr plan(new NestOp(
      PhysicalOpPtr(new TableScanOp(padded)), {"k"}, "t",
      Expr::Must(Expr::Field(row, "p")), "ps",
      /*null_group_to_empty=*/true));

  Executor reference(1);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> baseline,
                            reference.RunPhysical(plan.get()));
  size_t empty_sets = 0;
  for (const Value& out_row : baseline) {
    TMDB_ASSERT_OK_AND_ASSIGN(Value s, out_row.Field("ps"));
    if (s.Equals(Value::EmptySet())) ++empty_sets;
  }
  ASSERT_GT(empty_sets, 0u) << "workload produced no dangling groups";

  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string base =
        MakeSpillBase("nustar-t" + std::to_string(threads));
    Executor executor(threads);
    GuardLimits limits;
    limits.memory_budget_bytes = kBudget;
    executor.set_limits(limits);
    executor.set_spill_options(true, base, /*block_bytes=*/4096);
    executor.mutable_stats()->Reset();

    TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> spilled,
                              executor.RunPhysical(plan.get()));
    EXPECT_TRUE(BitIdentical(spilled, baseline));
    EXPECT_GT(executor.stats().spill_partitions, 0u)
        << "budget never engaged the ν* spill path: "
        << executor.stats().ToString();
    EXPECT_TRUE(SpillBaseEmpty(base));
    fs::remove_all(base);
  }
}

TEST_F(SpillNestTest, SpillDisabledStillFailsFast) {
  PhysicalOpPtr plan = MakeNest();
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = kBudget;
  executor.set_limits(limits);  // spill NOT enabled
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
}

// --------------------------------------------------- I/O fault injection

TEST_F(SpillJoinTest, IoFaultSweepUnwindsCleanlyAndLeaksNothing) {
  PhysicalOpPtr plan = MakeJoin(JoinMode::kNestJoin);
  const std::string base = MakeSpillBase("iofault");

  FaultInjector injector;
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = kBudget;
  executor.set_limits(limits);
  executor.set_fault_injector(&injector);
  executor.set_spill_options(true, base, 4096);

  // Counting pass: an installed-but-unarmed injector must not perturb the
  // run, and its counters size the sweep.
  injector.ArmIo(IoFaultKind::kShortWrite, 0);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> baseline,
                            executor.RunPhysical(plan.get()));
  const uint64_t writes = injector.io_writes_seen();
  const uint64_t reads = injector.io_reads_seen();
  const uint64_t unlinks = injector.io_unlinks_seen();
  ASSERT_GT(writes, 0u);
  ASSERT_GT(reads, 0u);
  ASSERT_GT(unlinks, 0u);
  EXPECT_TRUE(SpillBaseEmpty(base));

  struct Channel {
    IoFaultKind kind;
    uint64_t ops;
  };
  const Channel channels[] = {{IoFaultKind::kShortWrite, writes},
                              {IoFaultKind::kEnospc, writes},
                              {IoFaultKind::kCorruptRead, reads}};
  for (const Channel& ch : channels) {
    const uint64_t stride = std::max<uint64_t>(1, ch.ops / 7);
    for (uint64_t n = 1; n <= ch.ops; n += stride) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(ch.kind)) +
                   " n=" + std::to_string(n));
      injector.ArmIo(ch.kind, n);
      auto poisoned = executor.RunPhysical(plan.get());
      ASSERT_FALSE(poisoned.ok()) << "injected I/O fault did not surface";
      EXPECT_EQ(poisoned.status().code(), StatusCode::kIoError)
          << poisoned.status().ToString();
      EXPECT_EQ(injector.io_faults_fired(), 1u);
      EXPECT_TRUE(SpillBaseEmpty(base)) << "fault leaked spill files";

      // The same executor completes the same plan right afterwards.
      injector.DisarmIo();
      TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> recovered,
                                executor.RunPhysical(plan.get()));
      EXPECT_TRUE(BitIdentical(recovered, baseline));
      EXPECT_TRUE(SpillBaseEmpty(base));
    }
  }
  fs::remove_all(base);
}

TEST_F(SpillJoinTest, UnlinkFaultsNeverAffectTheQuery) {
  PhysicalOpPtr plan = MakeJoin(JoinMode::kNestJoin);
  const std::string base = MakeSpillBase("unlinkfault");

  FaultInjector injector;
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = kBudget;
  executor.set_limits(limits);
  executor.set_fault_injector(&injector);
  executor.set_spill_options(true, base, 4096);

  injector.ArmIo(IoFaultKind::kUnlinkFail, 0);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> baseline,
                            executor.RunPhysical(plan.get()));
  const uint64_t unlinks = injector.io_unlinks_seen();
  ASSERT_GT(unlinks, 0u);

  const uint64_t stride = std::max<uint64_t>(1, unlinks / 5);
  for (uint64_t n = 1; n <= unlinks; n += stride) {
    SCOPED_TRACE("n=" + std::to_string(n));
    injector.ArmIo(IoFaultKind::kUnlinkFail, n);
    // A failed unlink defers that file to the end-of-run sweep; the query
    // itself must succeed with identical output and still leak nothing.
    TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> rows,
                              executor.RunPhysical(plan.get()));
    EXPECT_TRUE(BitIdentical(rows, baseline));
    EXPECT_EQ(injector.io_faults_fired(), 1u);
    EXPECT_TRUE(SpillBaseEmpty(base));
  }
  fs::remove_all(base);
}

// --------------------------------------------------- cancellation mid-spill

/// Finite source of fat rows that cancels the query's guard from inside the
/// stream after `cancel_after` rows — timed to land while the consuming
/// join is already writing spill partitions.
class CancellingFatSource final : public PhysicalOp {
 public:
  CancellingFatSource(uint64_t total, uint64_t cancel_after)
      : total_(total), cancel_after_(cancel_after) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    emitted_ = 0;
    return Status::OK();
  }

  Result<std::optional<Value>> Next() override {
    if (emitted_ >= total_) return std::optional<Value>();
    ++emitted_;
    if (emitted_ == cancel_after_ && ctx_ != nullptr &&
        ctx_->guard != nullptr) {
      ctx_->guard->Cancel();
    }
    return std::optional<Value>(Value::Tuple(
        {"a", "b", "pad"},
        {Value::Int(static_cast<int64_t>(emitted_)),
         Value::Int(static_cast<int64_t>(emitted_ % 97)),
         Value::String(std::string(160, 'p'))}));
  }

  void Close() override {}
  std::string Describe() const override { return "CancellingFatSource"; }
  std::vector<const PhysicalOp*> children() const override { return {}; }

  static Type RowType() {
    return Type::Tuple({{"a", Type::Int()},
                        {"b", Type::Int()},
                        {"pad", Type::String()}});
  }

 private:
  uint64_t total_;
  uint64_t cancel_after_;
  ExecContext* ctx_ = nullptr;
  uint64_t emitted_ = 0;
};

TEST(SpillCancellationTest, CancelMidSpillUnwindsAndCleansUp) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto left, Table::Create("L", Type::Tuple({{"e", Type::Int()},
                                                 {"d", Type::Int()}})));
  TMDB_ASSERT_OK(left->Insert(IntRow({"e", "d"}, {1, 2})));
  // The 64 KiB budget trips after a few hundred fat rows, engaging the
  // spill write-out; the cancel lands thousands of rows later, mid-spill.
  auto* source = new CancellingFatSource(/*total=*/20000,
                                         /*cancel_after=*/10000);
  Expr xv = Expr::Var("x", left->schema());
  Expr yv = Expr::Var("y", CancellingFatSource::RowType());
  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = CancellingFatSource::RowType();
  spec.pred = Expr::True();
  PhysicalOpPtr plan(new HashJoinOp(
      PhysicalOpPtr(new TableScanOp(left)), PhysicalOpPtr(source),
      std::move(spec), {Expr::Must(Expr::Field(xv, "d"))},
      {Expr::Must(Expr::Field(yv, "b"))}));

  const std::string base = MakeSpillBase("cancel");
  // A count-only injector proves the cancel landed mid-spill: spill writes
  // happened before the cancellation aborted the write-out (aggregate spill
  // stats are only recorded once a write-out completes).
  FaultInjector injector;
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = 64 << 10;
  executor.set_limits(limits);
  executor.set_fault_injector(&injector);
  executor.set_spill_options(true, base, 4096);
  injector.ArmIo(IoFaultKind::kShortWrite, 0);  // count, never fire
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok()) << "cancel was lost";
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
      << run.status().ToString();
  EXPECT_GT(injector.io_writes_seen(), 0u)
      << "cancel landed before the spill engaged — tighten the budget";
  EXPECT_TRUE(SpillBaseEmpty(base)) << "cancellation leaked spill files";
  fs::remove_all(base);
}

// ------------------------------------- paper semantics under spilling, e2e

/// COUNT-bug and SUBSETEQ-bug queries over generated tables big enough to
/// force multi-level spilling of the nest-join build side, while a tiny
/// match fraction keeps the *result* (nested sets included) far below the
/// budget. Exactness here is the whole point: the nest join's dangling-row
/// semantics (empty set, not a lost row) must survive partitioning to disk.
class SpillSemanticsTest : public ::testing::Test {
 protected:
  static RunOptions Opts(uint64_t budget, bool spill, int threads,
                         const std::string& dir) {
    RunOptions o;
    o.strategy = Strategy::kNestJoin;
    o.join_impl = JoinImpl::kHash;
    o.num_threads = threads;
    o.memory_budget_bytes = budget;
    o.enable_spill = spill;
    o.spill_dir = dir;
    o.spill_block_bytes = 4096;
    return o;
  }

  /// Runs `query` unbudgeted, then with a budget forcing the spill path,
  /// serial and threaded; every result must be bit-identical, and the
  /// spill directory empty afterwards.
  void ExpectSpilledRunsMatch(Database* db, const std::string& query,
                              uint64_t budget) {
    const std::string base = MakeSpillBase("semantics");
    TMDB_ASSERT_OK_AND_ASSIGN(
        QueryResult unbudgeted, db->Run(query, Opts(0, false, 1, "")));

    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      TMDB_ASSERT_OK_AND_ASSIGN(
          QueryResult spilled,
          db->Run(query, Opts(budget, true, threads, base)));
      EXPECT_TRUE(BitIdentical(spilled.rows, unbudgeted.rows));
      EXPECT_GT(spilled.stats.spill_partitions, 0u)
          << "budget never engaged the spill path";
      EXPECT_TRUE(SpillBaseEmpty(base));
    }

    // With spilling off the same budget fails fast — and the database
    // stays usable (the unbudgeted rerun below).
    auto hard_fail = db->Run(query, Opts(budget, false, 1, ""));
    ASSERT_FALSE(hard_fail.ok());
    EXPECT_EQ(hard_fail.status().code(), StatusCode::kResourceExhausted)
        << hard_fail.status().ToString();
    TMDB_ASSERT_OK_AND_ASSIGN(
        QueryResult again, db->Run(query, Opts(0, false, 1, "")));
    EXPECT_TRUE(BitIdentical(again.rows, unbudgeted.rows));
    fs::remove_all(base);
  }
};

TEST_F(SpillSemanticsTest, CountBugQuerySpillsExactly) {
  Database db;
  CountBugConfig config;
  config.num_r = 100;
  config.num_s = 24000;
  // Wide, sparse key domain: join keys partition well, half the R rows
  // dangle (the COUNT bug's trigger), and most S rows match no R row — so
  // the result stays far below the budget while the build side dwarfs it.
  config.match_fraction = 0.5;
  config.domain_scale = 64;
  TMDB_ASSERT_OK(LoadCountBugTables(&db, config));
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  ExpectSpilledRunsMatch(&db, query, /*budget=*/256 << 10);

  // And the spilled nest-join answer is still the *correct* answer (naive
  // reference), not merely self-consistent.
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult spilled,
                            db.Run(query, Opts(256 << 10, true, 1,
                                               MakeSpillBase("cb-ref"))));
  RunOptions naive;
  naive.strategy = Strategy::kNaive;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference, db.Run(query, naive));
  EXPECT_TRUE(RowsEqual(spilled.rows, reference.rows));
}

TEST_F(SpillSemanticsTest, SubsetEqBugQuerySpillsExactly) {
  Database db;
  SubsetBugConfig config;
  config.num_x = 100;
  config.num_y = 24000;
  config.match_fraction = 0.5;
  config.domain_scale = 64;
  // A wide element domain keeps the generated Y rows distinct — tables are
  // sets, so a narrow domain would dedup the build side to a handful of
  // rows and the budget would never trip.
  config.value_domain = 1 << 20;
  TMDB_ASSERT_OK(LoadSubsetBugTables(&db, config));
  const std::string query =
      "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)";
  ExpectSpilledRunsMatch(&db, query, /*budget=*/256 << 10);
}

TEST_F(SpillSemanticsTest, CountBugQueryMergeJoinExternalSortsExactly) {
  Database db;
  CountBugConfig config;
  config.num_r = 100;
  config.num_s = 24000;
  config.match_fraction = 0.5;
  config.domain_scale = 64;
  TMDB_ASSERT_OK(LoadCountBugTables(&db, config));
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  const std::string base = MakeSpillBase("mj-e2e");

  RunOptions unbudgeted = Opts(0, false, 1, "");
  unbudgeted.join_impl = JoinImpl::kMerge;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference, db.Run(query, unbudgeted));

  // The same budget with spilling off fails fast …
  RunOptions hard = Opts(256 << 10, false, 1, "");
  hard.join_impl = JoinImpl::kMerge;
  auto hard_fail = db.Run(query, hard);
  ASSERT_FALSE(hard_fail.ok());
  EXPECT_EQ(hard_fail.status().code(), StatusCode::kResourceExhausted)
      << hard_fail.status().ToString();

  // … and with spilling on, the merge join degrades to sorted runs on disk
  // and reproduces the in-memory answer bit for bit.
  RunOptions opts = Opts(256 << 10, true, 1, base);
  opts.join_impl = JoinImpl::kMerge;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult spilled, db.Run(query, opts));
  EXPECT_TRUE(BitIdentical(spilled.rows, reference.rows));
  EXPECT_GT(spilled.stats.spill_sort_runs, 0u)
      << "budget never engaged the external sort: "
      << spilled.stats.ToString();
  EXPECT_EQ(spilled.stats.rows_emitted, reference.stats.rows_emitted);
  EXPECT_TRUE(SpillBaseEmpty(base));

  // And the spilled merge-join answer matches the naive reference.
  RunOptions naive;
  naive.strategy = Strategy::kNaive;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult truth, db.Run(query, naive));
  EXPECT_TRUE(RowsEqual(spilled.rows, truth.rows));
  fs::remove_all(base);
}

TEST_F(SpillSemanticsTest, OuterJoinNuStarGroupingSpillsExactly) {
  // Ganski–Wong (outerjoin + ν*): the flat outerjoin and the ν* regrouping
  // must survive partitioning to disk, null-padding drops included. The
  // outerjoin's flat output is resident state no amount of spilling can
  // shed, so the key domain is extra sparse (domain_scale 256) to keep it
  // small while the build side still dwarfs the budget.
  Database db;
  CountBugConfig config;
  config.num_r = 100;
  config.num_s = 24000;
  config.match_fraction = 0.5;
  config.domain_scale = 256;
  TMDB_ASSERT_OK(LoadCountBugTables(&db, config));
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  const std::string base = MakeSpillBase("nustar-e2e");

  RunOptions unbudgeted = Opts(0, false, 1, "");
  unbudgeted.strategy = Strategy::kOuterJoin;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference, db.Run(query, unbudgeted));

  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RunOptions opts = Opts(256 << 10, true, threads, base);
    opts.strategy = Strategy::kOuterJoin;
    TMDB_ASSERT_OK_AND_ASSIGN(QueryResult spilled, db.Run(query, opts));
    EXPECT_TRUE(BitIdentical(spilled.rows, reference.rows));
    EXPECT_GT(spilled.stats.spill_partitions, 0u)
        << "budget never engaged the spill path: "
        << spilled.stats.ToString();
    EXPECT_TRUE(SpillBaseEmpty(base));
  }

  RunOptions naive;
  naive.strategy = Strategy::kNaive;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult truth, db.Run(query, naive));
  EXPECT_TRUE(RowsEqual(reference.rows, truth.rows));
  fs::remove_all(base);
}

TEST_F(SpillSemanticsTest, MultiLevelSpillReachesDepthTwo) {
  Database db;
  CountBugConfig config;
  config.num_r = 100;
  config.num_s = 24000;
  config.match_fraction = 0.5;
  config.domain_scale = 64;
  TMDB_ASSERT_OK(LoadCountBugTables(&db, config));
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  const std::string base = MakeSpillBase("depth");
  // A budget well under the level-0 partition size forces recursion.
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult spilled,
                            db.Run(query, Opts(192 << 10, true, 1, base)));
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult unbudgeted,
                            db.Run(query, Opts(0, false, 1, "")));
  EXPECT_TRUE(BitIdentical(spilled.rows, unbudgeted.rows));
  EXPECT_GE(spilled.stats.spill_max_depth, 2u)
      << spilled.stats.ToString();
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

TEST_F(SpillSemanticsTest, IoFaultsSurfaceThroughRunOptions) {
  Database db;
  CountBugConfig config;
  config.num_r = 100;
  config.num_s = 16000;
  config.match_fraction = 0.5;
  config.domain_scale = 32;
  TMDB_ASSERT_OK(LoadCountBugTables(&db, config));
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  const std::string base = MakeSpillBase("e2e-fault");

  FaultInjector injector;
  RunOptions opts = Opts(256 << 10, true, 1, base);
  opts.fault_injector = &injector;

  injector.ArmIo(IoFaultKind::kEnospc, 0);  // count only
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult baseline, db.Run(query, opts));
  ASSERT_GT(injector.io_writes_seen(), 0u);

  injector.ArmIo(IoFaultKind::kEnospc, injector.io_writes_seen() / 2 + 1);
  auto poisoned = db.Run(query, opts);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kIoError)
      << poisoned.status().ToString();
  EXPECT_TRUE(SpillBaseEmpty(base));

  injector.DisarmIo();
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult recovered, db.Run(query, opts));
  EXPECT_TRUE(BitIdentical(recovered.rows, baseline.rows));
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

// ------------------------------------ phantom-charge regression (NestOp)

/// NestOp's parallel path allocates per-row scratch (keys, hashes, element
/// images) that dies before Open returns. The charge for it must be
/// refunded: a lingering phantom would make the parallel path report far
/// more resident memory than the serial path for the same input, eating
/// budget the spill accounting relies on.
TEST(PhantomChargeTest, NestOpParallelPathRefundsScratch) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto table, Table::Create("T", Type::Tuple({{"a", Type::Int()},
                                                  {"b", Type::Int()}})));
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    TMDB_ASSERT_OK(table->Insert(
        IntRow({"a", "b"}, {static_cast<int64_t>(i),
                            static_cast<int64_t>(i % 50)})));
  }
  Expr j = Expr::Var("j", table->schema());
  Expr elem = Expr::Must(Expr::Field(j, "a"));

  // Budget high enough to never trip — it only turns on memory tracking.
  GuardLimits limits;
  limits.memory_budget_bytes = 1ull << 30;

  auto measure = [&](bool parallel) -> int64_t {
    NestOp op(PhysicalOpPtr(new TableScanOp(table)), {"b"}, "j", elem, "s",
              /*null_group_to_empty=*/false);
    ExecStats stats;
    QueryGuard guard;
    guard.Reset(limits, &stats, nullptr);
    QuerySched sched(2);
    ExecContext ctx;
    ctx.stats = &stats;
    ctx.guard = &guard;
    ctx.sched = parallel ? &sched : nullptr;
    ctx.num_threads = parallel ? 2 : 1;
    Status s = op.Open(&ctx);
    EXPECT_TRUE(s.ok()) << s.ToString();
    const int64_t used = guard.memory_used();
    op.Close();
    return used;
  };

  const int64_t serial = measure(false);
  const int64_t parallel = measure(true);
  // Identical input, identical output: post-Open residency must match up
  // to noise. The unfixed phantom left ~n·(3·sizeof(Value)+8) extra bytes
  // charged on the parallel path — orders of magnitude over this margin.
  EXPECT_LE(parallel, serial + static_cast<int64_t>(n * 8))
      << "parallel NestOp retains a phantom scratch charge (serial="
      << serial << ", parallel=" << parallel << ")";
}

}  // namespace
}  // namespace tmdb
