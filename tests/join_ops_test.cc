// Cross-checks every join implementation (nested-loop, hash, sort-merge)
// against each other in every mode (inner, semi, anti, left-outer, nest
// join), on the paper's Table 1 instance and on random data.

#include <gtest/gtest.h>

#include "base/random.h"
#include "catalog/table.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/nested_loop_join.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntRow;
using testutil::RowsEqual;

enum class Impl { kNestedLoop, kHash, kMerge };

std::string ImplName(Impl impl) {
  switch (impl) {
    case Impl::kNestedLoop:
      return "NestedLoop";
    case Impl::kHash:
      return "Hash";
    case Impl::kMerge:
      return "Merge";
  }
  return "?";
}

struct JoinCase {
  Impl impl;
  JoinMode mode;
};

std::string CaseName(const ::testing::TestParamInfo<JoinCase>& info) {
  return ImplName(info.param.impl) + JoinModeName(info.param.mode);
}

class JoinOpsTest : public ::testing::TestWithParam<JoinCase> {
 protected:
  void SetUp() override {
    // Paper Table 1: X(e, d) = {(1,1),(2,1),(3,3)}... transcribed:
    // X rows (e, d): (1,1), (2,1)?? — Table 1 shows X with rows keyed e,d
    // and Y(a, b); the nest equijoin is on the *second* attribute.
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                            {"d", Type::Int()}})));
    TMDB_ASSERT_OK(x_->InsertAll({IntRow({"e", "d"}, {1, 1}),
                                  IntRow({"e", "d"}, {2, 2}),
                                  IntRow({"e", "d"}, {3, 3})}));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    TMDB_ASSERT_OK(y_->InsertAll({IntRow({"a", "b"}, {1, 1}),
                                  IntRow({"a", "b"}, {2, 1}),
                                  IntRow({"a", "b"}, {3, 3})}));
  }

  /// Builds the join physical op for the given implementation over table
  /// scans of x_/y_ with join predicate x.d = y.b (+ func y for nestjoin).
  PhysicalOpPtr MakeJoin(Impl impl, JoinMode mode,
                         std::shared_ptr<Table> left,
                         std::shared_ptr<Table> right) {
    Expr xv = Expr::Var("x", left->schema());
    Expr yv = Expr::Var("y", right->schema());
    Expr xd = Expr::Must(Expr::Field(xv, left->schema().fields()[1].name));
    Expr yb = Expr::Must(Expr::Field(yv, right->schema().fields()[1].name));

    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = right->schema();
    spec.func = yv;  // G = identity (paper's Table 1)
    spec.label = "s";

    PhysicalOpPtr l(new TableScanOp(left));
    PhysicalOpPtr r(new TableScanOp(right));
    switch (impl) {
      case Impl::kNestedLoop: {
        spec.pred = Expr::Must(Expr::Binary(BinaryOp::kEq, xd, yb));
        return PhysicalOpPtr(
            new NestedLoopJoinOp(std::move(l), std::move(r), std::move(spec)));
      }
      case Impl::kHash: {
        spec.pred = Expr::True();
        return PhysicalOpPtr(new HashJoinOp(std::move(l), std::move(r),
                                            std::move(spec), {xd}, {yb}));
      }
      case Impl::kMerge: {
        spec.pred = Expr::True();
        return PhysicalOpPtr(new MergeJoinOp(std::move(l), std::move(r),
                                             std::move(spec), {xd}, {yb}));
      }
    }
    return nullptr;
  }

  std::vector<Value> Run(PhysicalOp* op) {
    Executor executor;
    auto rows = executor.RunPhysical(op);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Value>();
  }

  std::shared_ptr<Table> x_;
  std::shared_ptr<Table> y_;
};

TEST_P(JoinOpsTest, MatchesNestedLoopReference) {
  const JoinCase param = GetParam();
  PhysicalOpPtr reference =
      MakeJoin(Impl::kNestedLoop, param.mode, x_, y_);
  PhysicalOpPtr tested = MakeJoin(param.impl, param.mode, x_, y_);
  EXPECT_TRUE(RowsEqual(Run(tested.get()), Run(reference.get())));
}

TEST_P(JoinOpsTest, MatchesNestedLoopReferenceOnRandomData) {
  const JoinCase param = GetParam();
  Random rng(7);
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto big_x, Table::Create("BX", Type::Tuple({{"e", Type::Int()},
                                                   {"d", Type::Int()}})));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto big_y, Table::Create("BY", Type::Tuple({{"a", Type::Int()},
                                                   {"b", Type::Int()}})));
  for (int i = 0; i < 200; ++i) {
    TMDB_ASSERT_OK(big_x->Insert(
        IntRow({"e", "d"}, {i, rng.UniformInt(0, 30)})));
  }
  for (int i = 0; i < 300; ++i) {
    TMDB_ASSERT_OK(big_y->Insert(
        IntRow({"a", "b"}, {i, rng.UniformInt(0, 30)})));
  }
  PhysicalOpPtr reference =
      MakeJoin(Impl::kNestedLoop, param.mode, big_x, big_y);
  PhysicalOpPtr tested = MakeJoin(param.impl, param.mode, big_x, big_y);
  EXPECT_TRUE(RowsEqual(Run(tested.get()), Run(reference.get())));
}

TEST_P(JoinOpsTest, EmptyRightInput) {
  const JoinCase param = GetParam();
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto empty_y, Table::Create("EY", Type::Tuple({{"a", Type::Int()},
                                                     {"b", Type::Int()}})));
  PhysicalOpPtr reference =
      MakeJoin(Impl::kNestedLoop, param.mode, x_, empty_y);
  PhysicalOpPtr tested = MakeJoin(param.impl, param.mode, x_, empty_y);
  std::vector<Value> expected = Run(reference.get());
  EXPECT_TRUE(RowsEqual(Run(tested.get()), expected));
  // Sanity on semantics over ∅: anti keeps all, semi/inner keep none,
  // outer pads all, nest join emits every x with s = ∅.
  switch (param.mode) {
    case JoinMode::kAnti:
    case JoinMode::kLeftOuter:
    case JoinMode::kNestJoin:
      EXPECT_EQ(expected.size(), x_->NumRows());
      break;
    case JoinMode::kInner:
    case JoinMode::kSemi:
      EXPECT_TRUE(expected.empty());
      break;
  }
}

TEST_P(JoinOpsTest, EmptyLeftInput) {
  const JoinCase param = GetParam();
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto empty_x, Table::Create("EX", Type::Tuple({{"e", Type::Int()},
                                                     {"d", Type::Int()}})));
  PhysicalOpPtr tested = MakeJoin(param.impl, param.mode, empty_x, y_);
  EXPECT_TRUE(Run(tested.get()).empty());
}

TEST_P(JoinOpsTest, ReopenResetsState) {
  const JoinCase param = GetParam();
  PhysicalOpPtr op = MakeJoin(param.impl, param.mode, x_, y_);
  std::vector<Value> first = Run(op.get());
  std::vector<Value> second = Run(op.get());
  EXPECT_TRUE(RowsEqual(std::move(second), std::move(first)));
}

INSTANTIATE_TEST_SUITE_P(
    AllImplsAllModes, JoinOpsTest,
    ::testing::Values(
        JoinCase{Impl::kNestedLoop, JoinMode::kInner},
        JoinCase{Impl::kNestedLoop, JoinMode::kSemi},
        JoinCase{Impl::kNestedLoop, JoinMode::kAnti},
        JoinCase{Impl::kNestedLoop, JoinMode::kLeftOuter},
        JoinCase{Impl::kNestedLoop, JoinMode::kNestJoin},
        JoinCase{Impl::kHash, JoinMode::kInner},
        JoinCase{Impl::kHash, JoinMode::kSemi},
        JoinCase{Impl::kHash, JoinMode::kAnti},
        JoinCase{Impl::kHash, JoinMode::kLeftOuter},
        JoinCase{Impl::kHash, JoinMode::kNestJoin},
        JoinCase{Impl::kMerge, JoinMode::kInner},
        JoinCase{Impl::kMerge, JoinMode::kSemi},
        JoinCase{Impl::kMerge, JoinMode::kAnti},
        JoinCase{Impl::kMerge, JoinMode::kLeftOuter},
        JoinCase{Impl::kMerge, JoinMode::kNestJoin}),
    CaseName);

// ------------------------------------------------ Table 1, pinned exactly

TEST(Table1Test, NestEquijoinOfPaperInstance) {
  // Table 1 of the paper: X and Y flat relations, nest equijoin on the
  // second attribute with the identity function. The dangling X tuple gets
  // the empty set.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto x, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                              {"d", Type::Int()}})));
  TMDB_ASSERT_OK(x->InsertAll({IntRow({"e", "d"}, {1, 1}),
                               IntRow({"e", "d"}, {2, 2}),
                               IntRow({"e", "d"}, {3, 3})}));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto y, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                              {"b", Type::Int()}})));
  TMDB_ASSERT_OK(y->InsertAll({IntRow({"a", "b"}, {1, 1}),
                               IntRow({"a", "b"}, {2, 1}),
                               IntRow({"a", "b"}, {3, 3})}));

  JoinSpec spec;
  spec.mode = JoinMode::kNestJoin;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = y->schema();
  Expr xv = Expr::Var("x", x->schema());
  Expr yv = Expr::Var("y", y->schema());
  spec.pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, Expr::Must(Expr::Field(xv, "d")),
      Expr::Must(Expr::Field(yv, "b"))));
  spec.func = yv;
  spec.label = "s";
  NestedLoopJoinOp join(PhysicalOpPtr(new TableScanOp(x)),
                        PhysicalOpPtr(new TableScanOp(y)), std::move(spec));
  Executor executor;
  TMDB_ASSERT_OK_AND_ASSIGN(auto rows, executor.RunPhysical(&join));

  auto y_row = [](int64_t a, int64_t b) { return IntRow({"a", "b"}, {a, b}); };
  std::vector<Value> expected = {
      Value::Tuple({"e", "d", "s"},
                   {Value::Int(1), Value::Int(1),
                    Value::Set({y_row(1, 1), y_row(2, 1)})}),
      Value::Tuple({"e", "d", "s"},
                   {Value::Int(2), Value::Int(2), Value::EmptySet()}),
      Value::Tuple({"e", "d", "s"},
                   {Value::Int(3), Value::Int(3),
                    Value::Set({y_row(3, 3)})}),
  };
  EXPECT_TRUE(RowsEqual(rows, expected));
}

}  // namespace
}  // namespace tmdb
