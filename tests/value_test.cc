#include "values/value.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "values/value_ops.h"

namespace tmdb {
namespace {

using testutil::IntSet;

TEST(ValueTest, AtomAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric(), 3.0);
}

TEST(ValueTest, SetsAreCanonicalised) {
  Value s = Value::Set({Value::Int(3), Value::Int(1), Value::Int(3),
                        Value::Int(2)});
  ASSERT_EQ(s.NumElements(), 3u);
  EXPECT_EQ(s.Element(0).AsInt(), 1);
  EXPECT_EQ(s.Element(1).AsInt(), 2);
  EXPECT_EQ(s.Element(2).AsInt(), 3);
}

TEST(ValueTest, SetEqualityIsOrderInsensitive) {
  Value a = Value::Set({Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(2), Value::Int(1)});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, ListsPreserveOrderAndDuplicates) {
  Value l = Value::List({Value::Int(2), Value::Int(1), Value::Int(2)});
  ASSERT_EQ(l.NumElements(), 3u);
  EXPECT_EQ(l.Element(0).AsInt(), 2);
  EXPECT_FALSE(l.Equals(Value::List({Value::Int(1), Value::Int(2),
                                     Value::Int(2)})));
}

TEST(ValueTest, IntRealNumericEquality) {
  EXPECT_TRUE(Value::Int(1).Equals(Value::Real(1.0)));
  EXPECT_EQ(Value::Int(1).Hash(), Value::Real(1.0).Hash());
  EXPECT_FALSE(Value::Int(1).Equals(Value::Real(1.5)));
  // Mixed set deduplicates across kinds.
  Value s = Value::Set({Value::Int(1), Value::Real(1.0), Value::Real(2.0)});
  EXPECT_EQ(s.NumElements(), 2u);
}

TEST(ValueTest, TupleFieldAccess) {
  Value t = Value::Tuple({"a", "b"}, {Value::Int(1), Value::String("x")});
  EXPECT_EQ(t.TupleSize(), 2u);
  EXPECT_EQ(t.FieldName(0), "a");
  ASSERT_NE(t.FindField("b"), nullptr);
  EXPECT_EQ(t.FindField("b")->AsString(), "x");
  EXPECT_EQ(t.FindField("nope"), nullptr);
  TMDB_ASSERT_OK_AND_ASSIGN(Value a, t.Field("a"));
  EXPECT_EQ(a.AsInt(), 1);
  EXPECT_FALSE(t.Field("nope").ok());
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  // null < bool < numeric < string < tuple < set < list.
  std::vector<Value> ordered = {
      Value::Null(),
      Value::Bool(false),
      Value::Int(5),
      Value::String("a"),
      Value::Tuple({"a"}, {Value::Int(1)}),
      Value::Set({Value::Int(1)}),
      Value::List({Value::Int(1)}),
  };
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      const int c = ordered[i].Compare(ordered[j]);
      if (i < j) {
        EXPECT_LT(c, 0) << i << " vs " << j;
      } else if (i == j) {
        EXPECT_EQ(c, 0);
      } else {
        EXPECT_GT(c, 0);
      }
    }
  }
}

TEST(ValueTest, NestedStructuralEquality) {
  auto make = [] {
    return Value::Tuple(
        {"name", "kids"},
        {Value::String("e"),
         Value::Set({Value::Tuple({"age"}, {Value::Int(4)}),
                     Value::Tuple({"age"}, {Value::Int(2)})})});
  };
  EXPECT_TRUE(make().Equals(make()));
  EXPECT_EQ(make().Hash(), make().Hash());
}

TEST(ValueTest, SetContainsUsesBinarySearch) {
  std::vector<Value> elems;
  for (int i = 0; i < 100; i += 2) elems.push_back(Value::Int(i));
  Value s = Value::Set(std::move(elems));
  EXPECT_TRUE(s.Contains(Value::Int(42)));
  EXPECT_FALSE(s.Contains(Value::Int(43)));
  EXPECT_TRUE(s.Contains(Value::Real(42.0)));  // numeric equality
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::Real(3.0).ToString(), "3.0");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::EmptySet().ToString(), "{}");
  EXPECT_EQ(
      Value::Tuple({"a"}, {IntSet({2, 1})}).ToString(),
      "<a = {1, 2}>");
}

TEST(TypeOfTest, DerivesNestedTypes) {
  Value v = Value::Tuple({"a", "s"},
                         {Value::Int(1), IntSet({1, 2})});
  Type t = TypeOf(v);
  ASSERT_TRUE(t.is_tuple());
  TMDB_ASSERT_OK_AND_ASSIGN(Type a, t.FieldType("a"));
  EXPECT_TRUE(a.is_int());
  TMDB_ASSERT_OK_AND_ASSIGN(Type s, t.FieldType("s"));
  ASSERT_TRUE(s.is_set());
  EXPECT_TRUE(s.element().is_int());
}

TEST(TypeOfTest, EmptySetIsSetOfAny) {
  Type t = TypeOf(Value::EmptySet());
  ASSERT_TRUE(t.is_set());
  EXPECT_TRUE(t.element().is_any());
}

TEST(ConformsToTest, Coercions) {
  EXPECT_TRUE(ConformsTo(Value::Int(1), Type::Real()));  // INT ⇒ REAL
  EXPECT_FALSE(ConformsTo(Value::Real(1.0), Type::Int()));
  EXPECT_TRUE(ConformsTo(Value::EmptySet(), Type::Set(Type::Int())));
  EXPECT_TRUE(ConformsTo(Value::Null(), Type::Int()));  // NULL conforms
  EXPECT_FALSE(ConformsTo(
      Value::Tuple({"a"}, {Value::Int(1)}),
      Type::Tuple({{"b", Type::Int()}})));
}

// ---------------------------------------------------------------- value_ops

TEST(SetOpsTest, UnionIntersectDifference) {
  Value a = IntSet({1, 2, 3});
  Value b = IntSet({2, 3, 4});
  TMDB_ASSERT_OK_AND_ASSIGN(Value u, SetUnion(a, b));
  EXPECT_TRUE(u.Equals(IntSet({1, 2, 3, 4})));
  TMDB_ASSERT_OK_AND_ASSIGN(Value i, SetIntersect(a, b));
  EXPECT_TRUE(i.Equals(IntSet({2, 3})));
  TMDB_ASSERT_OK_AND_ASSIGN(Value d, SetDifference(a, b));
  EXPECT_TRUE(d.Equals(IntSet({1})));
}

TEST(SetOpsTest, SubsetFamily) {
  Value a = IntSet({1, 2});
  Value b = IntSet({1, 2, 3});
  TMDB_ASSERT_OK_AND_ASSIGN(Value r1, SetSubsetEq(a, b));
  EXPECT_TRUE(r1.AsBool());
  TMDB_ASSERT_OK_AND_ASSIGN(Value r2, SetSubsetEq(b, a));
  EXPECT_FALSE(r2.AsBool());
  TMDB_ASSERT_OK_AND_ASSIGN(Value r3, SetSubset(a, a));
  EXPECT_FALSE(r3.AsBool());  // proper subset is irreflexive
  TMDB_ASSERT_OK_AND_ASSIGN(Value r4, SetSubsetEq(a, a));
  EXPECT_TRUE(r4.AsBool());
  // ∅ is a subset of everything — the crux of the SUBSETEQ bug.
  TMDB_ASSERT_OK_AND_ASSIGN(Value r5, SetSubsetEq(Value::EmptySet(), a));
  EXPECT_TRUE(r5.AsBool());
  TMDB_ASSERT_OK_AND_ASSIGN(Value r6,
                            SetSubsetEq(Value::EmptySet(), Value::EmptySet()));
  EXPECT_TRUE(r6.AsBool());
}

TEST(SetOpsTest, Disjoint) {
  TMDB_ASSERT_OK_AND_ASSIGN(Value r1, SetDisjoint(IntSet({1, 2}), IntSet({3})));
  EXPECT_TRUE(r1.AsBool());
  TMDB_ASSERT_OK_AND_ASSIGN(Value r2,
                            SetDisjoint(IntSet({1, 2}), IntSet({2, 3})));
  EXPECT_FALSE(r2.AsBool());
}

TEST(SetOpsTest, UnnestSetOfSets) {
  Value s = Value::Set({IntSet({1, 2}), IntSet({2, 3}), Value::EmptySet()});
  TMDB_ASSERT_OK_AND_ASSIGN(Value flat, UnnestSetOfSets(s));
  EXPECT_TRUE(flat.Equals(IntSet({1, 2, 3})));
  EXPECT_FALSE(UnnestSetOfSets(IntSet({1})).ok());
}

TEST(TupleOpsTest, ConcatAndExtend) {
  Value x = Value::Tuple({"a"}, {Value::Int(1)});
  Value y = Value::Tuple({"b"}, {Value::Int(2)});
  TMDB_ASSERT_OK_AND_ASSIGN(Value xy, ConcatTuples(x, y));
  EXPECT_EQ(xy.TupleSize(), 2u);
  EXPECT_FALSE(ConcatTuples(x, x).ok());  // duplicate attribute

  TMDB_ASSERT_OK_AND_ASSIGN(Value ext, ExtendTuple(x, "grp", IntSet({5})));
  TMDB_ASSERT_OK_AND_ASSIGN(Value grp, ext.Field("grp"));
  EXPECT_TRUE(grp.Equals(IntSet({5})));
  // Label already on the top level → error (paper's side condition).
  EXPECT_FALSE(ExtendTuple(x, "a", IntSet({5})).ok());
}

TEST(ArithmeticTest, IntAndRealPromotion) {
  TMDB_ASSERT_OK_AND_ASSIGN(Value i, NumericAdd(Value::Int(2), Value::Int(3)));
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.AsInt(), 5);
  TMDB_ASSERT_OK_AND_ASSIGN(Value r,
                            NumericMul(Value::Int(2), Value::Real(1.5)));
  EXPECT_TRUE(r.is_real());
  EXPECT_DOUBLE_EQ(r.AsReal(), 3.0);
  EXPECT_FALSE(NumericDiv(Value::Int(1), Value::Int(0)).ok());
  EXPECT_FALSE(NumericAdd(Value::Int(1), Value::String("x")).ok());
}

TEST(AggregateTest, CountSumAvgMinMax) {
  Value s = IntSet({4, 1, 3});
  TMDB_ASSERT_OK_AND_ASSIGN(Value c, AggCount(s));
  EXPECT_EQ(c.AsInt(), 3);
  TMDB_ASSERT_OK_AND_ASSIGN(Value sum, AggSum(s));
  EXPECT_EQ(sum.AsInt(), 8);
  TMDB_ASSERT_OK_AND_ASSIGN(Value avg, AggAvg(s));
  EXPECT_DOUBLE_EQ(avg.AsReal(), 8.0 / 3.0);
  TMDB_ASSERT_OK_AND_ASSIGN(Value mn, AggMin(s));
  EXPECT_EQ(mn.AsInt(), 1);
  TMDB_ASSERT_OK_AND_ASSIGN(Value mx, AggMax(s));
  EXPECT_EQ(mx.AsInt(), 4);
}

TEST(AggregateTest, EmptyCollectionBehaviour) {
  // count(∅) = 0 is exactly what makes the COUNT bug observable.
  TMDB_ASSERT_OK_AND_ASSIGN(Value c, AggCount(Value::EmptySet()));
  EXPECT_EQ(c.AsInt(), 0);
  TMDB_ASSERT_OK_AND_ASSIGN(Value s, AggSum(Value::EmptySet()));
  EXPECT_EQ(s.AsInt(), 0);
  EXPECT_FALSE(AggAvg(Value::EmptySet()).ok());
  EXPECT_FALSE(AggMin(Value::EmptySet()).ok());
  EXPECT_FALSE(AggMax(Value::EmptySet()).ok());
}

TEST(AggregateTest, MinMaxOnStrings) {
  Value s = Value::Set({Value::String("b"), Value::String("a")});
  TMDB_ASSERT_OK_AND_ASSIGN(Value mn, AggMin(s));
  EXPECT_EQ(mn.AsString(), "a");
}

TEST(NullPaddingTest, NullTupleOfType) {
  Type t = Type::Tuple({{"a", Type::Int()}, {"b", Type::String()}});
  Value padded = NullTupleOfType(t);
  EXPECT_EQ(padded.TupleSize(), 2u);
  EXPECT_TRUE(padded.FieldValue(0).is_null());
  EXPECT_TRUE(padded.FieldValue(1).is_null());
}

}  // namespace
}  // namespace tmdb
