// The cost model and the adaptive strategy switch, tested bottom-up:
//  - reservoir sampling is deterministic for a fixed (rows, seed, data)
//    triple and the GEE distinct estimates respect their [d, N] bounds on
//    uniform, single-key, all-distinct and skewed key distributions;
//  - ChooseStrategy picks memoized naive on a high-hit-ratio workload and
//    a nest-join strategy on a low-hit-ratio one, and never picks naive
//    when memoization is off;
//  - AdaptiveController requests a switch exactly when the observed hit
//    ratio falls short of the prediction by the threshold, stickily;
//  - end to end, a run whose cache is rigged to thrash (capacity 1 byte,
//    no spill) switches mid-query from naive to the unnested plan and
//    still returns exactly the forced-strategy rows.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/table.h"
#include "core/database.h"
#include "exec/adaptive.h"
#include "optimizer/cost_model.h"
#include "optimizer/planner.h"
#include "tests/test_util.h"
#include "translate/strategies.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

constexpr const char* kCorrelated =
    "SELECT (a = o.a, n = count(SELECT i.v FROM I i WHERE o.k = i.k)) "
    "FROM O o";

/// Loads the O/I correlated workload and returns the bound naive plan.
void LoadCorrelated(Database* db, size_t num_outer, int64_t scale,
                    double hot_key_fraction = 0.0) {
  CorrelatedConfig config;
  config.num_outer = num_outer;
  config.num_inner = 60;
  config.correlation_scale = scale;
  config.hot_key_fraction = hot_key_fraction;
  TMDB_ASSERT_OK(LoadCorrelatedTables(db, config));
}

Result<LogicalOpPtr> NaivePlan(Database* db) {
  return db->Plan(kCorrelated, Strategy::kNaive);
}

TEST(CostModelTest, SamplingIsDeterministicForAFixedSeed) {
  Database db;
  LoadCorrelated(&db, 2000, 1000);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));

  CostModelOptions options;
  options.sample_rows = 64;
  CostModel first(options);
  CostModel second(options);
  TMDB_ASSERT_OK_AND_ASSIGN(auto a, first.EstimateCorrelation(*naive));
  TMDB_ASSERT_OK_AND_ASSIGN(auto b, second.EstimateCorrelation(*naive));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->distinct.estimate, b->distinct.estimate);
  EXPECT_EQ(a->distinct.sample_distinct, b->distinct.sample_distinct);
  EXPECT_EQ(a->distinct.sampled_rows, b->distinct.sampled_rows);

  // The estimate is a function of the seed: resampling with another seed
  // must still satisfy the bounds, though the point estimate may move.
  options.sample_seed = 0xDEADBEEF;
  CostModel reseeded(options);
  TMDB_ASSERT_OK_AND_ASSIGN(auto c, reseeded.EstimateCorrelation(*naive));
  ASSERT_TRUE(c.has_value());
  EXPECT_GE(c->distinct.estimate, c->distinct.sample_distinct);
  EXPECT_LE(c->distinct.estimate, c->distinct.table_rows);
}

TEST(CostModelTest, SingleCorrelationValueEstimatesOne) {
  Database db;
  LoadCorrelated(&db, 500, 1);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(auto corr, model.EstimateCorrelation(*naive));
  ASSERT_TRUE(corr.has_value());
  EXPECT_EQ(corr->outer_table, "O");
  EXPECT_EQ(corr->outer_rows, 500u);
  EXPECT_EQ(corr->distinct.estimate, 1u);
  EXPECT_NEAR(corr->hit_ratio, 1.0 - 1.0 / 500.0, 1e-9);
}

TEST(CostModelTest, UniformRoundRobinKeysEstimateExactly) {
  // 10 round-robin values over 2000 rows: a 256-row sample sees every value
  // many times, so no singletons survive and GEE returns the sample count.
  Database db;
  LoadCorrelated(&db, 2000, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(auto corr, model.EstimateCorrelation(*naive));
  ASSERT_TRUE(corr.has_value());
  EXPECT_EQ(corr->distinct.estimate, 10u);
  EXPECT_GT(corr->hit_ratio, 0.99);
}

TEST(CostModelTest, AllDistinctKeysRespectBounds) {
  // scale == num_outer: every row has its own correlation value. The
  // sample is all singletons; the sqrt extrapolation must land in
  // [sample_distinct, table_rows] and well above the sample size.
  Database db;
  LoadCorrelated(&db, 2000, 2000);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(auto corr, model.EstimateCorrelation(*naive));
  ASSERT_TRUE(corr.has_value());
  EXPECT_GE(corr->distinct.estimate, corr->distinct.sample_distinct);
  EXPECT_LE(corr->distinct.estimate, 2000u);
  EXPECT_GT(corr->distinct.estimate, 256u)
      << "all-singleton sample should extrapolate beyond the sample size";
  EXPECT_LT(corr->hit_ratio, 0.9);
}

TEST(CostModelTest, SkewedKeysRespectBounds) {
  // 90% of rows take one of 8 hot values; the cold tail cycles through
  // 1000. The estimate must stay within [d, N] whatever the skew does to
  // the singleton count.
  Database db;
  LoadCorrelated(&db, 2000, 1000, /*hot_key_fraction=*/0.9);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(auto corr, model.EstimateCorrelation(*naive));
  ASSERT_TRUE(corr.has_value());
  EXPECT_GE(corr->distinct.estimate, corr->distinct.sample_distinct);
  EXPECT_LE(corr->distinct.estimate, 2000u);
}

TEST(ChooseStrategyTest, HighHitRatioPicksMemoizedNaive) {
  // 10 distinct correlation values over 10000 outer rows: memoized naive
  // computes ~10 subplans while every unnested strategy scans/joins the
  // full cross of O and I.
  Database db;
  LoadCorrelated(&db, 10000, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(StrategyDecision decision,
                            ChooseStrategy(naive, model));
  ASSERT_TRUE(decision.costed);
  EXPECT_EQ(decision.chosen, Strategy::kNaive);
  EXPECT_GT(decision.est_hit_ratio, 0.99);
  EXPECT_LE(decision.est_distinct_corr, 20u);
  Strategy fallback = Strategy::kNaive;
  ASSERT_TRUE(decision.BestUnnested(&fallback));
  EXPECT_NE(fallback, Strategy::kNaive);
}

TEST(ChooseStrategyTest, LowHitRatioPicksUnnested) {
  // Every outer row carries its own correlation value: memoization buys
  // nothing and naive pays outer × inner-scan. The unnested rewrites win.
  Database db;
  LoadCorrelated(&db, 10000, 10000);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(StrategyDecision decision,
                            ChooseStrategy(naive, model));
  ASSERT_TRUE(decision.costed);
  EXPECT_NE(decision.chosen, Strategy::kNaive);
  EXPECT_NE(decision.chosen, Strategy::kKim);
  EXPECT_LT(decision.est_hit_ratio, 0.9);
}

TEST(ChooseStrategyTest, MemoizationOffNeverPicksNaive) {
  // The same high-hit-ratio data, but costed for an executor that cannot
  // memoize: naive degenerates to one subplan execution per outer row.
  Database db;
  LoadCorrelated(&db, 10000, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModelOptions options;
  options.memo_enabled = false;
  CostModel model(options);
  TMDB_ASSERT_OK_AND_ASSIGN(StrategyDecision decision,
                            ChooseStrategy(naive, model));
  ASSERT_TRUE(decision.costed);
  EXPECT_NE(decision.chosen, Strategy::kNaive);
}

TEST(ChooseStrategyTest, SubplanFreeQueryIsUncosted) {
  Database db;
  LoadCorrelated(&db, 100, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive,
                            db.Plan("SELECT o.a FROM O o WHERE o.k = 3",
                                    Strategy::kNaive));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(StrategyDecision decision,
                            ChooseStrategy(naive, model));
  EXPECT_FALSE(decision.costed);
  EXPECT_EQ(decision.chosen, Strategy::kNestJoin);
  EXPECT_TRUE(decision.alternatives.empty());
}

TEST(ChooseStrategyTest, TableIsDeterministicAndNamesTheWinner) {
  Database db;
  LoadCorrelated(&db, 10000, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr naive, NaivePlan(&db));
  CostModel model;
  TMDB_ASSERT_OK_AND_ASSIGN(StrategyDecision first,
                            ChooseStrategy(naive, model));
  TMDB_ASSERT_OK_AND_ASSIGN(StrategyDecision second,
                            ChooseStrategy(naive, model));
  EXPECT_EQ(first.ToTable(), second.ToTable());
  EXPECT_NE(first.ToTable().find("* naive"), std::string::npos);
  EXPECT_NE(first.ToTable().find("chosen: naive"), std::string::npos);
}

TEST(AdaptiveControllerTest, SwitchesAtTheProbeWindowOnThrash) {
  AdaptiveController controller;
  AdaptiveConfig config;
  config.predicted_hit_ratio = 0.95;
  config.switch_threshold = 0.4;
  config.probe_acquires = 64;
  controller.Arm(config);
  // 63 misses: still inside the first window, no decision yet.
  for (int i = 0; i < 63; ++i) {
    TMDB_ASSERT_OK(controller.Observe(false));
  }
  EXPECT_FALSE(controller.switch_requested());
  // The 64th acquire closes the window: observed 0.0 vs predicted 0.95.
  Status s = controller.Observe(false);
  EXPECT_EQ(s.code(), StatusCode::kStrategySwitch) << s.ToString();
  EXPECT_TRUE(controller.switch_requested());
  // Sticky: even a hit now reports the switch so every worker unwinds.
  EXPECT_EQ(controller.Observe(true).code(), StatusCode::kStrategySwitch);
  controller.Disarm();
  EXPECT_FALSE(controller.armed());
  TMDB_ASSERT_OK(controller.Observe(false));
}

TEST(AdaptiveControllerTest, AccurateEstimateNeverSwitches) {
  AdaptiveController controller;
  AdaptiveConfig config;
  config.predicted_hit_ratio = 0.9;
  config.switch_threshold = 0.4;
  config.probe_acquires = 8;
  controller.Arm(config);
  // Observed ratio 7/8 = 0.875: shortfall 0.025 stays under the threshold
  // across many windows.
  for (int i = 0; i < 256; ++i) {
    TMDB_ASSERT_OK(controller.Observe(i % 8 != 0));
  }
  EXPECT_FALSE(controller.switch_requested());
  EXPECT_EQ(controller.acquires(), 256u);
}

TEST(AdaptiveControllerTest, ShortfallBelowThresholdHolds) {
  AdaptiveController controller;
  AdaptiveConfig config;
  config.predicted_hit_ratio = 0.5;
  config.switch_threshold = 0.4;
  config.probe_acquires = 4;
  controller.Arm(config);
  // Observed 0.25: shortfall 0.25 < 0.4 — no switch, however many windows.
  for (int i = 0; i < 64; ++i) {
    TMDB_ASSERT_OK(controller.Observe(i % 4 == 0));
  }
  EXPECT_FALSE(controller.switch_requested());
}

/// End to end: auto picks memoized naive (scale 10 over 200 rows), but a
/// 1-byte cache without spill turns every acquire into a miss — at the
/// 64th acquire the controller fires, the attempt unwinds, and the query
/// re-runs with the best unnested strategy. Rows must equal the forced
/// run's exactly; the stats must record the switch.
TEST(AdaptiveSwitchTest, ThrashingCacheSwitchesMidQuery) {
  Database db;
  LoadCorrelated(&db, 1000, 10);

  RunOptions forced;
  forced.strategy = Strategy::kNestJoin;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                            db.Run(kCorrelated, forced));

  RunOptions rigged;
  rigged.strategy = Strategy::kAuto;
  rigged.subplan_cache_bytes = 1;  // thrash: nothing ever stays cached
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult run, db.Run(kCorrelated, rigged));
  EXPECT_TRUE(run.auto_strategy);
  EXPECT_EQ(run.stats.strategy_switches, 1u) << run.stats.ToString();
  EXPECT_NE(run.strategy, Strategy::kNaive);
  EXPECT_EQ(run.stats.strategy_chosen, StrategyStatCode(run.strategy));
  ASSERT_EQ(run.rows.size(), reference.rows.size());
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult same_strategy,
                            db.Run(kCorrelated, [&] {
                              RunOptions o;
                              o.strategy = run.strategy;
                              return o;
                            }()));
  for (size_t i = 0; i < run.rows.size(); ++i) {
    EXPECT_TRUE(run.rows[i].Equals(same_strategy.rows[i])) << i;
  }
}

TEST(AdaptiveSwitchTest, HealthyCacheNeverSwitches) {
  Database db;
  LoadCorrelated(&db, 1000, 10);
  RunOptions options;
  options.strategy = Strategy::kAuto;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult run, db.Run(kCorrelated, options));
  EXPECT_TRUE(run.auto_strategy);
  EXPECT_EQ(run.strategy, Strategy::kNaive);
  EXPECT_EQ(run.stats.strategy_switches, 0u);
  EXPECT_EQ(run.stats.subplan_evals, 10u) << run.stats.ToString();
  EXPECT_GT(run.stats.est_distinct_corr, 0u);
}

TEST(AdaptiveSwitchTest, SwitchRespectsRemainingRowBudget) {
  // The rigged thrash run burns part of the max_rows budget in attempt 1;
  // a budget sized below attempt 1 + attempt 2 must fail with
  // kResourceExhausted rather than granting the re-plan a fresh allowance.
  Database db;
  LoadCorrelated(&db, 1000, 10);

  RunOptions unlimited;
  unlimited.strategy = Strategy::kAuto;
  unlimited.subplan_cache_bytes = 1;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult full, db.Run(kCorrelated, unlimited));
  ASSERT_EQ(full.stats.strategy_switches, 1u);
  const uint64_t total_rows =
      full.stats.rows_emitted + full.stats.rows_built;

  RunOptions tight = unlimited;
  tight.max_rows = total_rows - 1;
  Result<QueryResult> capped = db.Run(kCorrelated, tight);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted)
      << capped.status().ToString();

  // And the database stays usable after the budget trip.
  RunOptions plain;
  TMDB_ASSERT_OK(db.Run(kCorrelated, plain).status());
}

}  // namespace
}  // namespace tmdb
