// Robustness of the executor under resource governance and injected faults:
//  - sweeping a deterministic fault across every guard checkpoint of every
//    operator family must unwind into a clean Status, after which the same
//    executor (and its thread pool) runs the same plan to the correct result;
//  - random (seeded) fault rates must behave the same way;
//  - cancellation is observed within one batch (kExecBatchSize rows) of the
//    flag being set, for every materialising operator family;
//  - RunOptions limits surface end-to-end as kDeadlineExceeded /
//    kResourceExhausted without killing the process or the database.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/subplan.h"
#include "base/fault_injector.h"
#include "base/random.h"
#include "catalog/table.h"
#include "core/database.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/nest_op.h"
#include "exec/nested_loop_join.h"
#include "exec/query_guard.h"
#include "optimizer/planner.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

namespace fs = std::filesystem;

using testutil::IntRow;

std::string MakeSpillBase(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("tmdb-test-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

::testing::AssertionResult SpillBaseEmpty(const std::string& base) {
  if (!fs::exists(base)) return ::testing::AssertionSuccess();
  for (const auto& entry : fs::directory_iterator(base)) {
    return ::testing::AssertionFailure()
           << "leaked spill artefact: " << entry.path().string();
  }
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------------------ test sources

/// Endless stream of fresh ⟨a, b⟩ tuples. Optionally cancels the query's
/// guard after `cancel_after` rows, from inside the stream — the tightest
/// possible race against the consuming operator's checkpoints.
class EndlessSource final : public PhysicalOp {
 public:
  explicit EndlessSource(uint64_t cancel_after = 0)
      : cancel_after_(cancel_after) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    emitted_ = 0;
    return Status::OK();
  }

  Result<std::optional<Value>> Next() override {
    ++emitted_;
    if (emitted_ == cancel_after_ && ctx_ != nullptr &&
        ctx_->guard != nullptr) {
      ctx_->guard->Cancel();
    }
    return std::optional<Value>(
        IntRow({"a", "b"}, {static_cast<int64_t>(emitted_),
                            static_cast<int64_t>(emitted_ % 37)}));
  }

  void Close() override {}
  std::string Describe() const override { return "EndlessSource"; }
  std::vector<const PhysicalOp*> children() const override { return {}; }

  uint64_t emitted() const { return emitted_; }

  static Type RowType() {
    return Type::Tuple({{"a", Type::Int()}, {"b", Type::Int()}});
  }

 private:
  uint64_t cancel_after_;
  ExecContext* ctx_ = nullptr;
  uint64_t emitted_ = 0;
};

// --------------------------------------------- plans over every op family

/// Builds X(e, d) and Y(a, b) with skewed join keys, plus plan factories
/// for each operator family. Sizes are chosen so every plan passes through
/// at least a handful of guard checkpoints without making sweeps slow.
class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(23);
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                            {"d", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    for (int i = 0; i < 300; ++i) {
      TMDB_ASSERT_OK(x_->Insert(IntRow({"e", "d"},
                                       {i, rng.UniformInt(0, 60)})));
    }
    for (int i = 0; i < 600; ++i) {
      TMDB_ASSERT_OK(y_->Insert(IntRow({"a", "b"},
                                       {i, rng.UniformInt(0, 60)})));
    }
  }

  JoinSpec MakeSpec(JoinMode mode, bool with_pred) const {
    Expr xv = Expr::Var("x", x_->schema());
    Expr yv = Expr::Var("y", y_->schema());
    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = y_->schema();
    spec.pred = with_pred
                    ? Expr::Must(Expr::Binary(
                          BinaryOp::kEq, Expr::Must(Expr::Field(xv, "d")),
                          Expr::Must(Expr::Field(yv, "b"))))
                    : Expr::True();
    spec.func = yv;
    spec.label = "s";
    return spec;
  }

  PhysicalOpPtr MakeHashJoin(JoinMode mode) const {
    Expr xv = Expr::Var("x", x_->schema());
    Expr yv = Expr::Var("y", y_->schema());
    return PhysicalOpPtr(new HashJoinOp(
        PhysicalOpPtr(new TableScanOp(x_)), PhysicalOpPtr(new TableScanOp(y_)),
        MakeSpec(mode, /*with_pred=*/false),
        {Expr::Must(Expr::Field(xv, "d"))},
        {Expr::Must(Expr::Field(yv, "b"))}));
  }

  PhysicalOpPtr MakeMergeJoin(JoinMode mode) const {
    Expr xv = Expr::Var("x", x_->schema());
    Expr yv = Expr::Var("y", y_->schema());
    return PhysicalOpPtr(new MergeJoinOp(
        PhysicalOpPtr(new TableScanOp(x_)), PhysicalOpPtr(new TableScanOp(y_)),
        MakeSpec(mode, /*with_pred=*/false),
        {Expr::Must(Expr::Field(xv, "d"))},
        {Expr::Must(Expr::Field(yv, "b"))}));
  }

  PhysicalOpPtr MakeNestedLoopJoin(JoinMode mode) const {
    return PhysicalOpPtr(new NestedLoopJoinOp(
        PhysicalOpPtr(new TableScanOp(x_)), PhysicalOpPtr(new TableScanOp(y_)),
        MakeSpec(mode, /*with_pred=*/true)));
  }

  /// ν over Y grouped by b, then μ back — covers Nest and Unnest together.
  PhysicalOpPtr MakeNestUnnest() const {
    Expr j = Expr::Var("j", y_->schema());
    Expr elem = Expr::Must(Expr::MakeTuple(
        {"a"}, {Expr::Must(Expr::Field(j, "a"))}));
    PhysicalOpPtr nest(new NestOp(PhysicalOpPtr(new TableScanOp(y_)), {"b"},
                                  "j", elem, "s",
                                  /*null_group_to_empty=*/false));
    return PhysicalOpPtr(new UnnestOp(std::move(nest), "s"));
  }

  /// σ over map over union, minus a filtered copy — Filter, Map, Union and
  /// Difference in one plan.
  PhysicalOpPtr MakeBasicsPipeline() const {
    Expr yv = Expr::Var("y", y_->schema());
    Expr keep = Expr::Must(Expr::Binary(BinaryOp::kLt,
                                        Expr::Must(Expr::Field(yv, "b")),
                                        Expr::Literal(Value::Int(45))));
    PhysicalOpPtr both(new UnionOp(PhysicalOpPtr(new TableScanOp(y_)),
                                   PhysicalOpPtr(new TableScanOp(y_))));
    PhysicalOpPtr filtered(new FilterOp(std::move(both), "y", keep));
    PhysicalOpPtr mapped(new MapOp(std::move(filtered), "y", yv));
    PhysicalOpPtr drop(new FilterOp(
        PhysicalOpPtr(new TableScanOp(y_)), "y",
        Expr::Must(Expr::Binary(BinaryOp::kLt,
                                Expr::Must(Expr::Field(yv, "b")),
                                Expr::Literal(Value::Int(10))))));
    return PhysicalOpPtr(
        new DifferenceOp(std::move(mapped), std::move(drop)));
  }

  std::shared_ptr<Table> x_;
  std::shared_ptr<Table> y_;
};

/// Sweeps ArmNth across (a stride of) every guard checkpoint the plan
/// passes: each armed run must fail with the injected kInternal, and an
/// immediately following disarmed run on the SAME executor must reproduce
/// the baseline — proving the unwind left no partial operator state and the
/// pool is reusable. A nonzero `memory_budget` plus a `spill_base` runs the
/// whole sweep on the spill path instead: the baseline must actually engage
/// it, and every poisoned unwind must leave the spill directory bare.
void SweepInjectionPoints(PhysicalOp* plan, int threads,
                          uint64_t memory_budget = 0,
                          const std::string& spill_base = "") {
  FaultInjector injector;
  Executor executor(threads);
  executor.set_fault_injector(&injector);
  if (memory_budget > 0) {
    GuardLimits limits;
    limits.memory_budget_bytes = memory_budget;
    executor.set_limits(limits);
  }
  if (!spill_base.empty()) {
    executor.set_spill_options(true, spill_base, /*block_bytes=*/4096);
  }
  executor.mutable_stats()->Reset();

  injector.ArmNth(0);  // count-only baseline
  auto baseline = executor.RunPhysical(plan);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const uint64_t total = injector.checkpoints_seen();
  ASSERT_GT(total, 0u) << "plan passed no guard checkpoints";
  if (!spill_base.empty()) {
    ASSERT_GT(executor.stats().spill_partitions +
                  executor.stats().spill_sort_runs,
              0u)
        << "budget never engaged the spill path; stats: "
        << executor.stats().ToString();
  }

  const uint64_t stride = std::max<uint64_t>(1, total / 12);
  for (uint64_t n = 1; n <= total; n += stride) {
    injector.ArmNth(n);
    auto poisoned = executor.RunPhysical(plan);
    ASSERT_FALSE(poisoned.ok())
        << "checkpoint " << n << "/" << total << " did not fire";
    EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal)
        << poisoned.status().ToString();
    EXPECT_NE(poisoned.status().ToString().find("injected fault"),
              std::string::npos)
        << poisoned.status().ToString();
    EXPECT_EQ(injector.faults_fired(), 1u);
    if (!spill_base.empty()) {
      EXPECT_TRUE(SpillBaseEmpty(spill_base))
          << "fault at checkpoint " << n << " leaked spill files";
    }

    injector.Disarm();
    auto recovered = executor.RunPhysical(plan);
    ASSERT_TRUE(recovered.ok())
        << "run after fault at checkpoint " << n
        << " failed: " << recovered.status().ToString();
    ASSERT_EQ(recovered->size(), baseline->size())
        << "partial state leaked across fault at checkpoint " << n;
    for (size_t i = 0; i < recovered->size(); ++i) {
      ASSERT_TRUE((*recovered)[i].Equals((*baseline)[i]))
          << "row " << i << " diverges after fault at checkpoint " << n;
    }
  }
}

TEST_F(FaultSweepTest, HashJoinAllModesAllThreadCounts) {
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kSemi, JoinMode::kAnti,
                        JoinMode::kLeftOuter, JoinMode::kNestJoin}) {
    PhysicalOpPtr plan = MakeHashJoin(mode);
    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE(JoinModeName(mode) + "/threads=" +
                   std::to_string(threads));
      SweepInjectionPoints(plan.get(), threads);
    }
  }
}

TEST_F(FaultSweepTest, NestedLoopJoin) {
  // The NL join is serial; inner/nestjoin cover both emission shapes.
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kNestJoin}) {
    PhysicalOpPtr plan = MakeNestedLoopJoin(mode);
    SCOPED_TRACE(JoinModeName(mode));
    SweepInjectionPoints(plan.get(), 1);
  }
}

TEST_F(FaultSweepTest, MergeJoin) {
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kNestJoin}) {
    PhysicalOpPtr plan = MakeMergeJoin(mode);
    SCOPED_TRACE(JoinModeName(mode));
    SweepInjectionPoints(plan.get(), 1);
  }
}

TEST_F(FaultSweepTest, NestAndUnnest) {
  PhysicalOpPtr plan = MakeNestUnnest();
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SweepInjectionPoints(plan.get(), threads);
  }
}

TEST_F(FaultSweepTest, FilterMapUnionDifference) {
  PhysicalOpPtr plan = MakeBasicsPipeline();
  SweepInjectionPoints(plan.get(), 1);
}

// ------------------------------------ subplan and cache checkpoints

/// Plans whose expressions embed correlated subplans: every evaluation
/// passes the subplan-entry checkpoint, every memoized insertion passes the
/// cache-insertion checkpoint (the GuardReservation charge), and the inner
/// plan adds its own per-batch checkpoints. The sweep must reach all of
/// them: an injected fault mid-eviction or mid-subplan unwinds into the
/// same clean kInternal, and the executor (cache included) is reusable.
class SubplanFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(29);
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                            {"d", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        z_, Table::Create("Z", Type::Tuple({{"k", Type::Int()},
                                            {"v", Type::Int()}})));
    for (int i = 0; i < 120; ++i) {
      TMDB_ASSERT_OK(x_->Insert(IntRow({"e", "d"},
                                       {i, rng.UniformInt(0, 20)})));
    }
    for (int i = 0; i < 60; ++i) {
      TMDB_ASSERT_OK(z_->Insert(IntRow({"k", "v"}, {i % 21, i})));
    }
  }

  /// SELECT z.v FROM Z z WHERE z.k = `outer_field`, correlated on
  /// `outer_var`.
  Expr MakeSubplan(const std::string& outer_var, const Expr& outer_field) {
    auto scan = LogicalOp::Scan(z_);
    EXPECT_TRUE(scan.ok());
    Expr zv = Expr::Var("z", z_->schema());
    Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                        Expr::Must(Expr::Field(zv, "k")),
                                        outer_field));
    auto select = LogicalOp::Select(std::move(*scan), "z", pred);
    EXPECT_TRUE(select.ok());
    Expr mv = Expr::Var("m", (*select)->output_type());
    auto map = LogicalOp::Map(std::move(*select), "m",
                              Expr::Must(Expr::Field(mv, "v")));
    EXPECT_TRUE(map.ok());
    return PlanSubplan::MakeExpr(std::move(*map), {outer_var});
  }

  /// σ_{x.d ∈ subplan(x)}(X): one subplan evaluation per row, serial.
  PhysicalOpPtr MakeSubplanFilter() {
    Expr xv = Expr::Var("x", x_->schema());
    Expr pred = Expr::Must(Expr::Binary(
        BinaryOp::kIn, Expr::Must(Expr::Field(xv, "d")),
        MakeSubplan("x", Expr::Must(Expr::Field(xv, "d")))));
    return PhysicalOpPtr(
        new FilterOp(PhysicalOpPtr(new TableScanOp(x_)), "x", pred));
  }

  /// Self-join of X with subplan-valued hash keys and a subplan membership
  /// test in the residual predicate — subplans on the build side, the probe
  /// side, and inside parallel morsels.
  PhysicalOpPtr MakeSubplanHashJoin() {
    Expr xv = Expr::Var("x", x_->schema());
    Expr yv = Expr::Var("y", x_->schema());
    Expr left_key = Expr::Must(Expr::Aggregate(
        AggFunc::kCount, MakeSubplan("x", Expr::Must(Expr::Field(xv, "d")))));
    Expr right_key = Expr::Must(Expr::Aggregate(
        AggFunc::kCount, MakeSubplan("y", Expr::Must(Expr::Field(yv, "d")))));
    JoinSpec spec;
    spec.mode = JoinMode::kNestJoin;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = x_->schema();
    spec.pred = Expr::Must(Expr::Binary(
        BinaryOp::kIn, Expr::Must(Expr::Field(yv, "d")),
        MakeSubplan("x", Expr::Must(Expr::Field(xv, "d")))));
    spec.func = yv;
    spec.label = "s";
    return PhysicalOpPtr(new HashJoinOp(
        PhysicalOpPtr(new TableScanOp(x_)), PhysicalOpPtr(new TableScanOp(x_)),
        std::move(spec), {left_key}, {right_key}));
  }

  std::shared_ptr<Table> x_;
  std::shared_ptr<Table> z_;
};

TEST_F(SubplanFaultTest, FilterWithSubplanPredicate) {
  PhysicalOpPtr plan = MakeSubplanFilter();
  SweepInjectionPoints(plan.get(), 1);
}

TEST_F(SubplanFaultTest, HashJoinWithSubplansAllThreadCounts) {
  PhysicalOpPtr plan = MakeSubplanHashJoin();
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SweepInjectionPoints(plan.get(), threads);
  }
}

TEST_F(SubplanFaultTest, SweepWithCacheDisabledMatchesEnabledRows) {
  // The sweep holds with memoization off too (more checkpoints, no cache
  // insertion sites), and both configurations agree on the result.
  PhysicalOpPtr plan = MakeSubplanFilter();
  Executor cached(1);
  TMDB_ASSERT_OK_AND_ASSIGN(auto cached_rows, cached.RunPhysical(plan.get()));
  Executor uncached(1);
  uncached.set_subplan_cache_bytes(0);
  FaultInjector injector;
  uncached.set_fault_injector(&injector);
  injector.ArmNth(0);
  TMDB_ASSERT_OK_AND_ASSIGN(auto uncached_rows,
                            uncached.RunPhysical(plan.get()));
  ASSERT_EQ(uncached_rows.size(), cached_rows.size());
  for (size_t i = 0; i < cached_rows.size(); ++i) {
    ASSERT_TRUE(uncached_rows[i].Equals(cached_rows[i]));
  }
  const uint64_t total = injector.checkpoints_seen();
  ASSERT_GT(total, 0u);
  const uint64_t stride = std::max<uint64_t>(1, total / 6);
  for (uint64_t n = 1; n <= total; n += stride) {
    injector.ArmNth(n);
    auto poisoned = uncached.RunPhysical(plan.get());
    ASSERT_FALSE(poisoned.ok()) << "checkpoint " << n << " did not fire";
    EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal);
    injector.Disarm();
    auto recovered = uncached.RunPhysical(plan.get());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_EQ(recovered->size(), cached_rows.size());
  }
}

/// Random fault rates under several seeds: every failing run fails with the
/// injected kInternal (never a crash, never a mangled code), and a disarmed
/// rerun on the same executor matches the clean baseline.
TEST_F(FaultSweepTest, RandomRatesUnwindCleanly) {
  PhysicalOpPtr plan = MakeHashJoin(JoinMode::kNestJoin);
  for (int threads : {1, 4}) {
    FaultInjector injector;
    Executor executor(threads);
    executor.set_fault_injector(&injector);
    auto baseline = executor.RunPhysical(plan.get());
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    uint64_t total_fired = 0;
    for (uint64_t seed : {3u, 17u, 99u, 1234u}) {
      for (double rate : {0.02, 0.10}) {
        injector.ArmRate(rate, seed);
        auto run = executor.RunPhysical(plan.get());
        if (!run.ok()) {
          EXPECT_EQ(run.status().code(), StatusCode::kInternal)
              << run.status().ToString();
        }
        total_fired += injector.faults_fired();

        injector.Disarm();
        auto recovered = executor.RunPhysical(plan.get());
        ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
        ASSERT_EQ(recovered->size(), baseline->size());
      }
    }
    // At 10% over hundreds of checkpoints at least one fault must fire.
    EXPECT_GT(total_fired, 0u);
  }
}

// ------------------------------------------------------ guard trip timing

/// The guard-checkpoint invariant, observed externally: once Cancel() is
/// set, no operator family pulls more than one batch of further rows from
/// its input before the trip surfaces.
void ExpectPromptCancellation(EndlessSource* source, PhysicalOpPtr plan,
                              uint64_t cancel_after) {
  Executor executor(1);
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok()) << "endless plan completed?";
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
      << run.status().ToString();
  EXPECT_LE(source->emitted(), cancel_after + kExecBatchSize)
      << "operator ran more than one batch past the cancellation flag";
}

TEST(GuardTripTimingTest, FilterPullPath) {
  const uint64_t kCancelAfter = 2500;
  auto* source = new EndlessSource(kCancelAfter);
  PhysicalOpPtr plan(new FilterOp(PhysicalOpPtr(source), "y", Expr::True()));
  ExpectPromptCancellation(source, std::move(plan), kCancelAfter);
}

TEST(GuardTripTimingTest, HashJoinBuildPhase) {
  const uint64_t kCancelAfter = 2500;
  auto* source = new EndlessSource(kCancelAfter);
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto left, Table::Create("L", Type::Tuple({{"e", Type::Int()},
                                                 {"d", Type::Int()}})));
  TMDB_ASSERT_OK(left->Insert(IntRow({"e", "d"}, {1, 2})));
  Expr xv = Expr::Var("x", left->schema());
  Expr yv = Expr::Var("y", EndlessSource::RowType());
  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = EndlessSource::RowType();
  spec.pred = Expr::True();
  PhysicalOpPtr plan(new HashJoinOp(
      PhysicalOpPtr(new TableScanOp(left)), PhysicalOpPtr(source),
      std::move(spec), {Expr::Must(Expr::Field(xv, "d"))},
      {Expr::Must(Expr::Field(yv, "b"))}));
  ExpectPromptCancellation(source, std::move(plan), kCancelAfter);
}

TEST(GuardTripTimingTest, NestedLoopJoinBuildPhase) {
  const uint64_t kCancelAfter = 2500;
  auto* source = new EndlessSource(kCancelAfter);
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto left, Table::Create("L", Type::Tuple({{"e", Type::Int()},
                                                 {"d", Type::Int()}})));
  TMDB_ASSERT_OK(left->Insert(IntRow({"e", "d"}, {1, 2})));
  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = EndlessSource::RowType();
  spec.pred = Expr::True();
  PhysicalOpPtr plan(new NestedLoopJoinOp(
      PhysicalOpPtr(new TableScanOp(left)), PhysicalOpPtr(source),
      std::move(spec)));
  ExpectPromptCancellation(source, std::move(plan), kCancelAfter);
}

TEST(GuardTripTimingTest, MergeJoinSortPhase) {
  const uint64_t kCancelAfter = 2500;
  auto* source = new EndlessSource(kCancelAfter);
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto left, Table::Create("L", Type::Tuple({{"e", Type::Int()},
                                                 {"d", Type::Int()}})));
  TMDB_ASSERT_OK(left->Insert(IntRow({"e", "d"}, {1, 2})));
  Expr xv = Expr::Var("x", left->schema());
  Expr yv = Expr::Var("y", EndlessSource::RowType());
  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = EndlessSource::RowType();
  spec.pred = Expr::True();
  PhysicalOpPtr plan(new MergeJoinOp(
      PhysicalOpPtr(new TableScanOp(left)), PhysicalOpPtr(source),
      std::move(spec), {Expr::Must(Expr::Field(xv, "d"))},
      {Expr::Must(Expr::Field(yv, "b"))}));
  ExpectPromptCancellation(source, std::move(plan), kCancelAfter);
}

TEST(GuardTripTimingTest, NestBuildPhase) {
  const uint64_t kCancelAfter = 2500;
  auto* source = new EndlessSource(kCancelAfter);
  Expr j = Expr::Var("j", EndlessSource::RowType());
  Expr elem = Expr::Must(Expr::Field(j, "a"));
  PhysicalOpPtr plan(new NestOp(PhysicalOpPtr(source), {"b"}, "j", elem, "s",
                                /*null_group_to_empty=*/false));
  ExpectPromptCancellation(source, std::move(plan), kCancelAfter);
}

TEST(GuardTripTimingTest, CancelFromAnotherThread) {
  auto* source = new EndlessSource(/*cancel_after=*/0);  // never self-cancels
  PhysicalOpPtr plan(
      new FilterOp(PhysicalOpPtr(source), "y", Expr::True()));
  Executor executor(1);
  GuardLimits backstop;  // keeps the test finite even if the cancel is lost
  backstop.timeout_ms = 10000;
  executor.set_limits(backstop);
  std::thread canceller([&executor] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    executor.guard()->Cancel();
  });
  auto run = executor.RunPhysical(plan.get());
  canceller.join();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
      << run.status().ToString();
}

// ------------------------------------------------------- executor limits

TEST(ExecutorLimitsTest, DeadlineExceededOnEndlessPlan) {
  auto* source = new EndlessSource();
  PhysicalOpPtr plan(
      new FilterOp(PhysicalOpPtr(source), "y", Expr::True()));
  Executor executor(1);
  GuardLimits limits;
  limits.timeout_ms = 50;
  executor.set_limits(limits);
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
      << run.status().ToString();
}

TEST(ExecutorLimitsTest, MaxRowsTripsDeterministically) {
  auto* source = new EndlessSource();
  PhysicalOpPtr plan(
      new FilterOp(PhysicalOpPtr(source), "y", Expr::True()));
  Executor executor(1);
  GuardLimits limits;
  limits.max_rows = 5000;
  executor.set_limits(limits);
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
  // Processed-row budgets observe the same one-batch bound as cancellation.
  EXPECT_LE(source->emitted(), limits.max_rows + 2 * kExecBatchSize);
}

TEST(ExecutorLimitsTest, MemoryBudgetTripsBeforeTheAllocator) {
  auto* source = new EndlessSource();
  PhysicalOpPtr plan(
      new FilterOp(PhysicalOpPtr(source), "y", Expr::True()));
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = 1 << 20;  // 1 MiB of fresh tuples
  executor.set_limits(limits);
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
  // A later unlimited run on the same executor is unaffected (tracking
  // baselines reset per run).
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto table, Table::Create("T", Type::Tuple({{"a", Type::Int()}})));
  TMDB_ASSERT_OK(table->Insert(IntRow({"a"}, {1})));
  executor.set_limits(GuardLimits());
  PhysicalOpPtr scan(new TableScanOp(table));
  auto ok_run = executor.RunPhysical(scan.get());
  ASSERT_TRUE(ok_run.ok()) << ok_run.status().ToString();
  EXPECT_EQ(ok_run->size(), 1u);
}

// ------------------------------------------------- end-to-end RunOptions

class DatabaseLimitsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK(db_.ExecuteScript(
                       "CREATE TABLE X (e : INT, d : INT);"
                       "CREATE TABLE Y (a : INT, b : INT)")
                       .status());
    Random rng(31);
    for (int i = 0; i < 60; ++i) {
      TMDB_ASSERT_OK(db_.Insert("X", IntRow({"e", "d"},
                                            {i, rng.UniformInt(0, 12)})));
    }
    for (int i = 0; i < 120; ++i) {
      TMDB_ASSERT_OK(db_.Insert("Y", IntRow({"a", "b"},
                                            {i, rng.UniformInt(0, 12)})));
    }
  }

  static constexpr const char* kQuery =
      "SELECT x.e FROM X x WHERE 1 IN (SELECT y.a FROM Y y WHERE x.d = y.b)";

  Database db_;
};

TEST_F(DatabaseLimitsTest, MaxRowsSurfacesAsResourceExhausted) {
  RunOptions limited;
  limited.max_rows = 10;
  auto run = db_.Run(kQuery, limited);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();

  // The database (catalog included) stays fully usable after the trip.
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult full, db_.Run(kQuery));
  RunOptions generous;
  generous.max_rows = 1000000;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult under_budget,
                            db_.Run(kQuery, generous));
  EXPECT_TRUE(testutil::RowsEqual(under_budget.rows, full.rows));
}

TEST_F(DatabaseLimitsTest, MemoryBudgetSurfacesAsResourceExhausted) {
  RunOptions limited;
  limited.memory_budget_bytes = 2048;  // far below the build tables
  auto run = db_.Run(kQuery, limited);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();

  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult full, db_.Run(kQuery));
  RunOptions generous;
  generous.memory_budget_bytes = 256ull << 20;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult under_budget,
                            db_.Run(kQuery, generous));
  EXPECT_TRUE(testutil::RowsEqual(under_budget.rows, full.rows));
}

TEST_F(DatabaseLimitsTest, TimeoutSurfacesAsDeadlineExceeded) {
  // Grow Y until the naive (correlated re-execution) strategy overruns a
  // small timeout; each doubling multiplies the subplan work.
  RunOptions naive;
  naive.strategy = Strategy::kNaive;
  naive.timeout_ms = 5;
  bool tripped = false;
  int next_id = 1000;
  for (int round = 0; round < 8 && !tripped; ++round) {
    auto run = db_.Run(kQuery, naive);
    if (!run.ok()) {
      ASSERT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
          << run.status().ToString();
      tripped = true;
      break;
    }
    const int grow = 2000 * (1 << round);
    for (int i = 0; i < grow; ++i, ++next_id) {
      TMDB_ASSERT_OK(db_.Insert("Y", IntRow({"a", "b"},
                                            {next_id, next_id % 13})));
    }
  }
  EXPECT_TRUE(tripped) << "timeout never fired despite growing inputs";
  // And the database still answers once the pressure is off.
  TMDB_ASSERT_OK(db_.Run(kQuery).status());
}

TEST_F(DatabaseLimitsTest, FaultInjectorThreadsThroughRunOptions) {
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult baseline, db_.Run(kQuery));

  FaultInjector injector;
  injector.ArmNth(5);
  RunOptions options;
  options.fault_injector = &injector;
  auto poisoned = db_.Run(kQuery, options);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal)
      << poisoned.status().ToString();

  injector.Disarm();
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult recovered, db_.Run(kQuery, options));
  EXPECT_TRUE(testutil::RowsEqual(recovered.rows, baseline.rows));
}

// ------------------------------ spill write-out paths under injected faults

/// Budgeted plans that engage the spill write-out paths — the merge join's
/// external sort and ν's grouped-materialisation spill — with the same
/// shapes as the spill execution tests: inputs that dwarf a 128 KiB budget
/// while the output stays far below it.
class SpillPathFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(101);
    TMDB_ASSERT_OK_AND_ASSIGN(
        left_, Table::Create("L", Type::Tuple({{"e", Type::Int()},
                                               {"d", Type::Int()}})));
    for (int i = 0; i < 80; ++i) {
      TMDB_ASSERT_OK(left_->Insert(
          IntRow({"e", "d"}, {i, rng.UniformInt(0, 100000)})));
    }
    TMDB_ASSERT_OK_AND_ASSIGN(
        right_,
        Table::Create("R", Type::Tuple({{"a", Type::Int()},
                                        {"b", Type::Int()},
                                        {"pad", Type::String()}})));
    const std::string pad(160, 'p');
    for (int i = 0; i < 6000; ++i) {
      TMDB_ASSERT_OK(right_->Insert(Value::Tuple(
          {"a", "b", "pad"},
          {Value::Int(i), Value::Int(rng.UniformInt(0, 100000)),
           Value::String(pad)})));
    }
    TMDB_ASSERT_OK_AND_ASSIGN(
        t_, Table::Create("T", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()},
                                            {"c", Type::Int()}})));
    for (int i = 0; i < 12000; ++i) {
      TMDB_ASSERT_OK(t_->Insert(
          IntRow({"a", "b", "c"}, {i, rng.UniformInt(0, 40), i % 5})));
    }
  }

  PhysicalOpPtr MakeMergeJoin() const {
    Expr xv = Expr::Var("x", left_->schema());
    Expr yv = Expr::Var("y", right_->schema());
    JoinSpec spec;
    spec.mode = JoinMode::kNestJoin;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = right_->schema();
    spec.pred = Expr::True();
    spec.func = Expr::Must(Expr::Field(yv, "a"));
    spec.label = "s";
    return PhysicalOpPtr(new MergeJoinOp(
        PhysicalOpPtr(new TableScanOp(left_)),
        PhysicalOpPtr(new TableScanOp(right_)), std::move(spec),
        {Expr::Must(Expr::Field(xv, "d"))},
        {Expr::Must(Expr::Field(yv, "b"))}));
  }

  PhysicalOpPtr MakeNest() const {
    Expr j = Expr::Var("j", t_->schema());
    return PhysicalOpPtr(new NestOp(PhysicalOpPtr(new TableScanOp(t_)), {"b"},
                                    "j", Expr::Must(Expr::Field(j, "c")), "s",
                                    /*null_group_to_empty=*/false));
  }

  static constexpr uint64_t kBudget = 128 << 10;

  std::shared_ptr<Table> left_;
  std::shared_ptr<Table> right_;
  std::shared_ptr<Table> t_;
};

TEST_F(SpillPathFaultTest, MergeJoinExternalSortCheckpointSweep) {
  PhysicalOpPtr plan = MakeMergeJoin();
  const std::string base = MakeSpillBase("fault-sort");
  SweepInjectionPoints(plan.get(), 1, kBudget, base);
  fs::remove_all(base);
}

TEST_F(SpillPathFaultTest, NestSpillCheckpointSweepAllThreadCounts) {
  PhysicalOpPtr plan = MakeNest();
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string base =
        MakeSpillBase("fault-nest-t" + std::to_string(threads));
    SweepInjectionPoints(plan.get(), threads, kBudget, base);
    fs::remove_all(base);
  }
}

/// ArmIo sweep over a budgeted plan: every write/read fault must surface as
/// kIoError with nothing left on disk, and a disarmed rerun on the same
/// executor must reproduce the baseline.
void SweepIoFaults(PhysicalOp* plan, int threads, uint64_t budget,
                   const std::string& base) {
  FaultInjector injector;
  Executor executor(threads);
  GuardLimits limits;
  limits.memory_budget_bytes = budget;
  executor.set_limits(limits);
  executor.set_fault_injector(&injector);
  executor.set_spill_options(true, base, 4096);

  injector.ArmIo(IoFaultKind::kShortWrite, 0);  // count only
  auto baseline = executor.RunPhysical(plan);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const uint64_t writes = injector.io_writes_seen();
  const uint64_t reads = injector.io_reads_seen();
  ASSERT_GT(writes, 0u) << "budget never engaged the spill path";
  ASSERT_GT(reads, 0u);

  struct Channel {
    IoFaultKind kind;
    uint64_t ops;
  };
  const Channel channels[] = {{IoFaultKind::kShortWrite, writes},
                              {IoFaultKind::kEnospc, writes},
                              {IoFaultKind::kCorruptRead, reads}};
  for (const Channel& ch : channels) {
    const uint64_t stride = std::max<uint64_t>(1, ch.ops / 5);
    for (uint64_t n = 1; n <= ch.ops; n += stride) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(ch.kind)) +
                   " n=" + std::to_string(n));
      injector.ArmIo(ch.kind, n);
      auto poisoned = executor.RunPhysical(plan);
      ASSERT_FALSE(poisoned.ok()) << "injected I/O fault did not surface";
      EXPECT_EQ(poisoned.status().code(), StatusCode::kIoError)
          << poisoned.status().ToString();
      EXPECT_TRUE(SpillBaseEmpty(base)) << "fault leaked spill files";

      injector.DisarmIo();
      auto recovered = executor.RunPhysical(plan);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      ASSERT_EQ(recovered->size(), baseline->size());
      for (size_t i = 0; i < recovered->size(); ++i) {
        ASSERT_TRUE((*recovered)[i].Equals((*baseline)[i]))
            << "row " << i << " diverges after I/O fault";
      }
      EXPECT_TRUE(SpillBaseEmpty(base));
    }
  }
}

TEST_F(SpillPathFaultTest, MergeJoinExternalSortIoFaultSweep) {
  PhysicalOpPtr plan = MakeMergeJoin();
  const std::string base = MakeSpillBase("iofault-sort");
  SweepIoFaults(plan.get(), 1, kBudget, base);
  fs::remove_all(base);
}

TEST_F(SpillPathFaultTest, NestSpillIoFaultSweepSerialAndParallel) {
  PhysicalOpPtr plan = MakeNest();
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string base =
        MakeSpillBase("iofault-nest-t" + std::to_string(threads));
    SweepIoFaults(plan.get(), threads, kBudget, base);
    fs::remove_all(base);
  }
}

// --------------------------- guard trips landing mid-spill, new write paths

TEST_F(SpillPathFaultTest, CancelMidExternalSortUnwindsAndCleansUp) {
  // An endless sort input under a small budget spills runs forever; the
  // cancel lands thousands of rows in, mid write-out.
  auto* source = new EndlessSource(/*cancel_after=*/10000);
  Expr xv = Expr::Var("x", left_->schema());
  Expr yv = Expr::Var("y", EndlessSource::RowType());
  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = EndlessSource::RowType();
  spec.pred = Expr::True();
  PhysicalOpPtr plan(new MergeJoinOp(
      PhysicalOpPtr(new TableScanOp(left_)), PhysicalOpPtr(source),
      std::move(spec), {Expr::Must(Expr::Field(xv, "d"))},
      {Expr::Must(Expr::Field(yv, "b"))}));

  const std::string base = MakeSpillBase("cancel-sort");
  FaultInjector injector;
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = 64 << 10;
  executor.set_limits(limits);
  executor.set_fault_injector(&injector);
  executor.set_spill_options(true, base, 4096);
  injector.ArmIo(IoFaultKind::kShortWrite, 0);  // count, never fire
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok()) << "cancel was lost";
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
      << run.status().ToString();
  EXPECT_GT(injector.io_writes_seen(), 0u)
      << "cancel landed before the sort spilled — tighten the budget";
  EXPECT_TRUE(SpillBaseEmpty(base)) << "cancellation leaked sort runs";
  fs::remove_all(base);
}

TEST_F(SpillPathFaultTest, DeadlineMidExternalSortSurfaces) {
  auto* source = new EndlessSource();  // never self-cancels
  Expr xv = Expr::Var("x", left_->schema());
  Expr yv = Expr::Var("y", EndlessSource::RowType());
  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = EndlessSource::RowType();
  spec.pred = Expr::True();
  PhysicalOpPtr plan(new MergeJoinOp(
      PhysicalOpPtr(new TableScanOp(left_)), PhysicalOpPtr(source),
      std::move(spec), {Expr::Must(Expr::Field(xv, "d"))},
      {Expr::Must(Expr::Field(yv, "b"))}));

  const std::string base = MakeSpillBase("deadline-sort");
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = 64 << 10;
  limits.timeout_ms = 100;
  executor.set_limits(limits);
  executor.set_spill_options(true, base, 4096);
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
      << run.status().ToString();
  EXPECT_TRUE(SpillBaseEmpty(base)) << "deadline trip leaked sort runs";
  fs::remove_all(base);
}

TEST_F(SpillPathFaultTest, CancelMidNestSpillUnwindsAndCleansUp) {
  // ν over an endless stream grows 37 groups without bound: the budget
  // engages the grouped-materialisation spill, then the cancel lands.
  auto* source = new EndlessSource(/*cancel_after=*/10000);
  Expr j = Expr::Var("j", EndlessSource::RowType());
  PhysicalOpPtr plan(new NestOp(PhysicalOpPtr(source), {"b"}, "j",
                                Expr::Must(Expr::Field(j, "a")), "s",
                                /*null_group_to_empty=*/false));

  const std::string base = MakeSpillBase("cancel-nest");
  FaultInjector injector;
  Executor executor(1);
  GuardLimits limits;
  limits.memory_budget_bytes = 64 << 10;
  executor.set_limits(limits);
  executor.set_fault_injector(&injector);
  executor.set_spill_options(true, base, 4096);
  injector.ArmIo(IoFaultKind::kShortWrite, 0);  // count, never fire
  auto run = executor.RunPhysical(plan.get());
  ASSERT_FALSE(run.ok()) << "cancel was lost";
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
      << run.status().ToString();
  EXPECT_GT(injector.io_writes_seen(), 0u)
      << "cancel landed before ν spilled — tighten the budget";
  EXPECT_TRUE(SpillBaseEmpty(base)) << "cancellation leaked ν partitions";
  fs::remove_all(base);
}

// ------------------------------- subplan-cache overflow under I/O faults

TEST_F(SubplanFaultTest, CacheOverflowIoFaultsDegradeWithoutFailing) {
  // A 1-byte soft cap over a thrashing key cycle keeps the disk-overflow
  // path hot: constant writes (evictions), reads (fault-ins) and unlinks.
  // Unlike the operator spill paths, every cache I/O failure must DEGRADE —
  // a failed write drops the entry, a corrupt read recomputes — never fail
  // the query, and never change its rows.
  PhysicalOpPtr plan = MakeSubplanFilter();
  const std::string base = MakeSpillBase("iofault-subcache");
  FaultInjector injector;
  Executor executor(1);
  executor.set_subplan_cache_bytes(1);
  executor.set_fault_injector(&injector);
  executor.set_spill_options(true, base, 4096);

  injector.ArmIo(IoFaultKind::kShortWrite, 0);  // count only
  TMDB_ASSERT_OK_AND_ASSIGN(auto baseline, executor.RunPhysical(plan.get()));
  const uint64_t writes = injector.io_writes_seen();
  const uint64_t reads = injector.io_reads_seen();
  const uint64_t unlinks = injector.io_unlinks_seen();
  ASSERT_GT(writes, 0u) << "soft cap never overflowed to disk";
  ASSERT_GT(reads, 0u) << "no overflow entry was ever faulted back in";
  ASSERT_GT(unlinks, 0u);
  EXPECT_TRUE(SpillBaseEmpty(base));

  struct Channel {
    IoFaultKind kind;
    uint64_t ops;
  };
  const Channel channels[] = {{IoFaultKind::kShortWrite, writes},
                              {IoFaultKind::kEnospc, writes},
                              {IoFaultKind::kCorruptRead, reads},
                              {IoFaultKind::kUnlinkFail, unlinks}};
  for (const Channel& ch : channels) {
    const uint64_t stride = std::max<uint64_t>(1, ch.ops / 5);
    for (uint64_t n = 1; n <= ch.ops; n += stride) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(ch.kind)) +
                   " n=" + std::to_string(n));
      injector.ArmIo(ch.kind, n);
      auto run = executor.RunPhysical(plan.get());
      ASSERT_TRUE(run.ok())
          << "cache overflow I/O fault failed the query: "
          << run.status().ToString();
      ASSERT_EQ(run->size(), baseline.size());
      for (size_t i = 0; i < run->size(); ++i) {
        ASSERT_TRUE((*run)[i].Equals(baseline[i]))
            << "row " << i << " diverges under cache I/O fault";
      }
      EXPECT_EQ(injector.io_faults_fired(), 1u) << "fault never fired";
      EXPECT_TRUE(SpillBaseEmpty(base));
    }
  }
  fs::remove_all(base);
}

// ------------------- strategy = auto under faults and cancellation
//
// The auto path adds two phases in front of ordinary execution — cost-model
// sampling and (after a mid-query switch) a second attempt — and both run
// under the same guard as the query itself. The sweeps below walk a fault
// across the combined checkpoint sequence, so sampling, attempt 1 and the
// re-planned attempt 2 all get poisoned.

class AutoStrategyFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 10 distinct correlation values over 1000 outer rows: the cost model
    // picks memoized naive, and a 1-byte cache then thrashes it into an
    // adaptive switch at the 64th probe (serial execution).
    CorrelatedConfig config;
    config.num_outer = 1000;
    config.num_inner = 60;
    config.correlation_scale = 10;
    TMDB_ASSERT_OK(LoadCorrelatedTables(&db_, config));
  }

  static RunOptions ThrashAutoOptions(FaultInjector* injector) {
    RunOptions options;
    options.strategy = Strategy::kAuto;
    options.subplan_cache_bytes = 1;
    options.fault_injector = injector;
    return options;
  }

  static void ExpectSameRows(const QueryResult& run,
                             const QueryResult& baseline) {
    ASSERT_EQ(run.rows.size(), baseline.rows.size());
    for (size_t i = 0; i < run.rows.size(); ++i) {
      ASSERT_TRUE(run.rows[i].Equals(baseline.rows[i]))
          << "row " << i << " diverges";
    }
  }

  static constexpr const char* kCorrelated =
      "SELECT (a = o.a, n = count(SELECT i.v FROM I i WHERE o.k = i.k)) "
      "FROM O o";

  Database db_;
  Executor executor_{1};
};

TEST_F(AutoStrategyFaultTest, CheckpointSweepAcrossSamplingAndSwitch) {
  FaultInjector injector;
  const RunOptions options = ThrashAutoOptions(&injector);

  injector.ArmNth(0);  // count-only baseline
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                            db_.RunWith(kCorrelated, options, &executor_));
  ASSERT_EQ(baseline.stats.strategy_switches, 1u)
      << "thrashing workload no longer triggers the adaptive switch; the "
         "sweep would not cover attempt 2";
  EXPECT_TRUE(baseline.auto_strategy);
  EXPECT_NE(baseline.strategy, Strategy::kNaive);
  const uint64_t total = injector.checkpoints_seen();
  ASSERT_GT(total, 0u);

  const uint64_t stride = std::max<uint64_t>(1, total / 12);
  for (uint64_t n = 1; n <= total; n += stride) {
    SCOPED_TRACE("checkpoint " + std::to_string(n) + " of " +
                 std::to_string(total));
    injector.ArmNth(n);
    auto poisoned = db_.RunWith(kCorrelated, options, &executor_);
    ASSERT_FALSE(poisoned.ok()) << "checkpoint " << n << " did not fire";
    EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal)
        << poisoned.status().ToString();
    EXPECT_NE(poisoned.status().message().find("injected fault"),
              std::string::npos)
        << "fault surfaced as something other than the injected error: "
        << poisoned.status().ToString();
    EXPECT_EQ(injector.faults_fired(), 1u);

    // The same executor recovers to the exact baseline — including the
    // adaptive switch firing again at the same probe.
    injector.Disarm();
    auto recovered = db_.RunWith(kCorrelated, options, &executor_);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ExpectSameRows(*recovered, baseline);
    EXPECT_EQ(recovered->stats.strategy_switches, 1u);
    EXPECT_EQ(recovered->strategy, baseline.strategy);
  }
}

TEST_F(AutoStrategyFaultTest, RandomRatesUnwindCleanly) {
  FaultInjector injector;
  const RunOptions options = ThrashAutoOptions(&injector);
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                            db_.RunWith(kCorrelated, options, &executor_));

  for (uint64_t seed : {3u, 17u, 99u, 1234u}) {
    for (double rate : {0.002, 0.02}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " rate=" + std::to_string(rate));
      injector.ArmRate(rate, seed);
      auto run = db_.RunWith(kCorrelated, options, &executor_);
      if (run.ok()) {
        ExpectSameRows(*run, baseline);
      } else {
        EXPECT_EQ(run.status().code(), StatusCode::kInternal)
            << run.status().ToString();
      }

      injector.Disarm();
      auto recovered = db_.RunWith(kCorrelated, options, &executor_);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      ExpectSameRows(*recovered, baseline);
    }
  }
}

TEST_F(AutoStrategyFaultTest, CacheOverflowIoFaultsDegradeUnderAuto) {
  // With spill enabled the 1-byte cap overflows entries to disk and faults
  // them back in as hits, so cache I/O runs hot through the auto path.
  // Cache I/O failures must degrade (drop the entry / recompute), never
  // fail the query or change its rows.
  const std::string base = MakeSpillBase("iofault-auto");
  FaultInjector injector;
  RunOptions options = ThrashAutoOptions(&injector);
  options.enable_spill = true;
  options.spill_dir = base;
  options.spill_block_bytes = 4096;

  injector.ArmIo(IoFaultKind::kShortWrite, 0);  // count only
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                            db_.RunWith(kCorrelated, options, &executor_));
  const uint64_t writes = injector.io_writes_seen();
  const uint64_t reads = injector.io_reads_seen();
  ASSERT_GT(writes, 0u) << "soft cap never overflowed to disk";
  ASSERT_GT(reads, 0u) << "no overflow entry was ever faulted back in";
  EXPECT_TRUE(SpillBaseEmpty(base));

  struct Channel {
    IoFaultKind kind;
    uint64_t ops;
  };
  const Channel channels[] = {{IoFaultKind::kShortWrite, writes},
                              {IoFaultKind::kEnospc, writes},
                              {IoFaultKind::kCorruptRead, reads}};
  for (const Channel& ch : channels) {
    const uint64_t stride = std::max<uint64_t>(1, ch.ops / 4);
    for (uint64_t n = 1; n <= ch.ops; n += stride) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(ch.kind)) +
                   " n=" + std::to_string(n));
      injector.ArmIo(ch.kind, n);
      auto run = db_.RunWith(kCorrelated, options, &executor_);
      ASSERT_TRUE(run.ok()) << "cache overflow I/O fault failed the query: "
                            << run.status().ToString();
      ExpectSameRows(*run, baseline);
      EXPECT_TRUE(SpillBaseEmpty(base));
    }
  }
  injector.DisarmIo();
  fs::remove_all(base);
}

TEST_F(AutoStrategyFaultTest, CancelRacingTheAdaptiveSwitchNeverLeaks) {
  // A cancel landing anywhere in the auto pipeline — sampling, attempt 1,
  // the switch unwind, attempt 2 — must surface as kCancelled or lose the
  // race and leave a clean result. kStrategySwitch is an internal control
  // code and must never escape; neither may any other error.
  RunOptions options;
  options.strategy = Strategy::kAuto;
  options.subplan_cache_bytes = 1;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                            db_.RunWith(kCorrelated, options, &executor_));
  ASSERT_EQ(baseline.stats.strategy_switches, 1u);

  for (int delay_us : {0, 50, 100, 200, 400, 800, 1600, 3200}) {
    SCOPED_TRACE("delay_us=" + std::to_string(delay_us));
    std::thread canceller([this, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      executor_.guard()->Cancel();
    });
    auto run = db_.RunWith(kCorrelated, options, &executor_);
    canceller.join();
    if (run.ok()) {
      ExpectSameRows(*run, baseline);
    } else {
      EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
          << run.status().ToString();
      EXPECT_NE(run.status().message().find("query cancelled"),
                std::string::npos)
          << run.status().ToString();
    }

    // The executor is reusable after every outcome.
    auto next = db_.RunWith(kCorrelated, options, &executor_);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ExpectSameRows(*next, baseline);
  }
}

// ------------------------------------------------- fault injector itself

TEST(FaultInjectorTest, NthModeFiresExactlyOnce) {
  FaultInjector injector;
  injector.ArmNth(3);
  EXPECT_TRUE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFail());
  EXPECT_FALSE(injector.ShouldFail());
  EXPECT_TRUE(injector.ShouldFail());
  EXPECT_FALSE(injector.ShouldFail());
  EXPECT_EQ(injector.checkpoints_seen(), 4u);
  EXPECT_EQ(injector.faults_fired(), 1u);
}

TEST(FaultInjectorTest, CountOnlyModeNeverFires) {
  FaultInjector injector;
  injector.ArmNth(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(injector.ShouldFail());
  EXPECT_EQ(injector.checkpoints_seen(), 100u);
  EXPECT_EQ(injector.faults_fired(), 0u);
}

TEST(FaultInjectorTest, RateModeIsDeterministicPerSeed) {
  auto fire_pattern = [](uint64_t seed) {
    FaultInjector injector;
    injector.ArmRate(0.25, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(injector.ShouldFail());
    return fired;
  };
  EXPECT_EQ(fire_pattern(7), fire_pattern(7));
  EXPECT_NE(fire_pattern(7), fire_pattern(8));

  FaultInjector injector;
  injector.ArmRate(0.25, 7);
  for (int i = 0; i < 2000; ++i) injector.ShouldFail();
  // ~500 expected; the hash would have to be badly broken to leave [350,650].
  EXPECT_GT(injector.faults_fired(), 350u);
  EXPECT_LT(injector.faults_fired(), 650u);

  injector.Disarm();
  EXPECT_FALSE(injector.enabled());
}

}  // namespace
}  // namespace tmdb
