// Database facade tests: Run/Plan/Explain/Execute options, the EXPLAIN
// statement, and the dump → replay round trip.

#include "core/database.h"

#include <gtest/gtest.h>

#include "core/dump.h"
#include "parser/parser.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using testutil::RowsEqual;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK(db_.ExecuteScript(
                       "CREATE TABLE R (a : INT, b : INT);"
                       "CREATE TABLE S (b : INT, c : INT);"
                       "INSERT INTO R VALUES (a = 1, b = 5), (a = 2, b = 6),"
                       "                     (a = 3, b = 7);"
                       "INSERT INTO S VALUES (b = 5, c = 50), (b = 7, c = 70)")
                     .status());
  }
  Database db_;
};

TEST_F(DatabaseTest, RunDefaultStrategy) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result,
      db_.Run("SELECT x.a FROM R x WHERE x.b IN (SELECT y.b FROM S y)"));
  EXPECT_EQ(result.strategy, Strategy::kNestJoin);
  EXPECT_TRUE(RowsEqual(result.rows, {Value::Int(1), Value::Int(3)}));
  EXPECT_GT(result.stats.rows_emitted, 0u);
}

TEST_F(DatabaseTest, QueryResultToString) {
  TMDB_ASSERT_OK_AND_ASSIGN(auto result, db_.Run("SELECT x FROM R x"));
  const std::string rendered = result.ToString(2);
  EXPECT_NE(rendered.find("3 row(s)"), std::string::npos);
  EXPECT_NE(rendered.find("1 more"), std::string::npos);  // truncation note
}

TEST_F(DatabaseTest, ExplainMentionsAllSections) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      std::string explained,
      db_.Explain("SELECT x FROM R x WHERE x.b IN "
                  "(SELECT y.b FROM S y WHERE y.c > x.a)"));
  EXPECT_NE(explained.find("naive logical plan"), std::string::npos);
  EXPECT_NE(explained.find("rewritten"), std::string::npos);
  EXPECT_NE(explained.find("Table 2"), std::string::npos);
  EXPECT_NE(explained.find("physical plan"), std::string::npos);
  EXPECT_NE(explained.find("SemiJoin"), std::string::npos);
}

TEST_F(DatabaseTest, ExplainStatement) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result,
      db_.Execute("EXPLAIN SELECT x FROM R x WHERE x.b IN "
                  "(SELECT y.b FROM S y)"));
  EXPECT_FALSE(result.is_query);
  EXPECT_NE(result.message.find("physical plan"), std::string::npos);
}

TEST_F(DatabaseTest, RunErrorsPropagate) {
  EXPECT_FALSE(db_.Run("SELECT nope FROM R x").ok());
  EXPECT_FALSE(db_.Run("not a query at all ((").ok());
  EXPECT_FALSE(db_.Explain("SELECT x FROM NoTable x").ok());
}

TEST_F(DatabaseTest, InsertViaApi) {
  TMDB_ASSERT_OK(db_.Insert(
      "R", Value::Tuple({"a", "b"}, {Value::Int(9), Value::Int(9)})));
  EXPECT_FALSE(db_.Insert("R", Value::Int(1)).ok());
  EXPECT_FALSE(db_.Insert("NoTable", Value::Int(1)).ok());
}

TEST(DumpTest, ValueLiterals) {
  TMDB_ASSERT_OK_AND_ASSIGN(std::string b, ValueToLiteral(Value::Bool(true)));
  EXPECT_EQ(b, "true");
  TMDB_ASSERT_OK_AND_ASSIGN(std::string r, ValueToLiteral(Value::Real(2.0)));
  EXPECT_EQ(r, "2.0");
  TMDB_ASSERT_OK_AND_ASSIGN(
      std::string s, ValueToLiteral(Value::String("a\"b")));
  EXPECT_EQ(s, "\"a\\\"b\"");
  TMDB_ASSERT_OK_AND_ASSIGN(
      std::string t,
      ValueToLiteral(Value::Tuple({"x"}, {Value::EmptySet()})));
  EXPECT_EQ(t, "(x = {})");
  EXPECT_FALSE(ValueToLiteral(Value::Null()).ok());
  EXPECT_FALSE(ValueToLiteral(Value::List({Value::Int(1)})).ok());
}

TEST(DumpTest, TypeDdl) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      std::string ddl,
      TypeToDdl(Type::Tuple({{"a", Type::Set(Type::Int())},
                             {"b", Type::Tuple({{"c", Type::String()}})}})));
  EXPECT_EQ(ddl, "(a : P(INT), b : (c : STRING))");
  EXPECT_FALSE(TypeToDdl(Type::Any()).ok());
}

TEST(DumpTest, RoundTripThroughScript) {
  Database original;
  CompanyConfig config;
  config.num_depts = 3;
  config.num_emps = 12;
  TMDB_ASSERT_OK(LoadCompanyTables(&original, config));

  TMDB_ASSERT_OK_AND_ASSIGN(std::string script, DumpScript(original));
  Database replayed;
  TMDB_ASSERT_OK(replayed.ExecuteScript(script).status());

  for (const std::string& name : original.catalog()->TableNames()) {
    TMDB_ASSERT_OK_AND_ASSIGN(auto before, original.catalog()->GetTable(name));
    TMDB_ASSERT_OK_AND_ASSIGN(auto after, replayed.catalog()->GetTable(name));
    EXPECT_TRUE(after->schema().Equals(before->schema())) << name;
    EXPECT_TRUE(RowsEqual(after->rows(), before->rows())) << name;
  }

  // And the replayed database answers queries identically.
  const std::string query =
      "SELECT (dname = d.dname, n = count(SELECT e FROM EMP e "
      "WHERE e.address.city = d.address.city)) FROM DEPT d";
  TMDB_ASSERT_OK_AND_ASSIGN(auto a, original.Run(query));
  TMDB_ASSERT_OK_AND_ASSIGN(auto b, replayed.Run(query));
  EXPECT_TRUE(RowsEqual(a.rows, b.rows));
}

TEST(ParserDepthTest, DeepNestingFailsCleanly) {
  std::string deep(500, '(');
  deep += "1";
  deep += std::string(500, ')');
  auto result = ParseQuery(deep);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nesting too deep"),
            std::string::npos);
  // Moderate nesting still parses.
  std::string ok(50, '(');
  ok += "1";
  ok += std::string(50, ')');
  EXPECT_TRUE(ParseQuery(ok).ok());
}

}  // namespace
}  // namespace tmdb
