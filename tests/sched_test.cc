// Tests for the process-wide work-stealing scheduler: exactly-once task
// execution, slot-ordered error reporting, per-query parallelism caps,
// row-aware morsel splitting, the no-thread-churn contract for reused
// executors, and a multi-query concurrency soak (skewed work, several
// tagged queries sharing the one pool, results and stats bit-identical to
// serial, cancellation of one query invisible to its neighbours).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "core/database.h"
#include "exec/executor.h"
#include "exec/parallel_util.h"
#include "sched/scheduler.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntRow;

// ---------------------------------------------------------- scheduler core

TEST(SchedulerTest, RunsEveryTaskExactlyOnce) {
  QuerySched sched(8);
  constexpr size_t kTasks = 512;
  std::vector<std::atomic<int>> runs(kTasks);
  Status status = Scheduler::Global().RunTaskSet(
      &sched, kTasks, [&runs](size_t i) {
        runs[i].fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(sched.morsels_dispatched(), kTasks);
  EXPECT_LE(sched.morsels_stolen(), sched.morsels_dispatched());
}

TEST(SchedulerTest, ReturnsFirstErrorInTaskOrder) {
  // Many tasks fail; the reported error must be the lowest-indexed one no
  // matter which thread ran what, so failures are deterministic.
  QuerySched sched(8);
  Status status = Scheduler::Global().RunTaskSet(
      &sched, 64, [](size_t i) -> Status {
        if (i >= 5) return Status::Internal("task " + std::to_string(i));
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("task 5"), std::string::npos)
      << status.ToString();
}

TEST(SchedulerTest, ParallelismCapBoundsConcurrentTasks) {
  QuerySched sched(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  Status status = Scheduler::Global().RunTaskSet(
      &sched, 32, [&](size_t) {
        const int now = running.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        running.fetch_sub(1);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(sched.morsels_dispatched(), 32u);
}

TEST(SchedulerTest, CapOneRunsEverythingOnTheCallingThread) {
  QuerySched sched(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  Status status = Scheduler::Global().RunTaskSet(
      &sched, 16, [&](size_t) {
        if (std::this_thread::get_id() != caller) {
          off_thread.fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(off_thread.load(), 0);
  EXPECT_EQ(sched.morsels_stolen(), 0u);
}

TEST(SchedulerTest, ZeroTasksIsANoOp) {
  QuerySched sched(4);
  Status status = Scheduler::Global().RunTaskSet(
      &sched, 0, [](size_t) { return Status::OK(); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(sched.morsels_dispatched(), 0u);
}

TEST(SchedulerTest, UntaggedSetsRunAtPoolWidth) {
  std::atomic<size_t> done{0};
  Status status = Scheduler::Global().RunTaskSet(
      nullptr, 64, [&done](size_t) {
        done.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(done.load(), 64u);
}

TEST(SchedulerTest, PerQueryCountersAccumulateAcrossSets) {
  QuerySched sched(4);
  for (size_t tasks : {10u, 20u}) {
    ASSERT_TRUE(Scheduler::Global()
                    .RunTaskSet(&sched, tasks,
                                [](size_t) { return Status::OK(); })
                    .ok());
  }
  EXPECT_EQ(sched.morsels_dispatched(), 30u);
  EXPECT_LE(sched.morsels_stolen(), 30u);
}

TEST(SchedulerTest, CapUpdateIsAPlainStore) {
  QuerySched sched(2);
  EXPECT_EQ(sched.max_parallelism(), 2);
  sched.set_max_parallelism(8);
  EXPECT_EQ(sched.max_parallelism(), 8);
  sched.set_max_parallelism(0);  // clamped
  EXPECT_EQ(sched.max_parallelism(), 1);
}

// ----------------------------------------------- row-aware morsel splitting

void ExpectExactCover(const std::vector<MorselRange>& morsels, size_t n) {
  size_t pos = 0;
  for (const MorselRange& m : morsels) {
    EXPECT_EQ(m.begin, pos);
    EXPECT_LT(m.begin, m.end);
    pos = m.end;
  }
  EXPECT_EQ(pos, n);
}

TEST(RowAwareMorselSplitTest, ZeroRowsYieldsNoMorsels) {
  EXPECT_TRUE(SplitMorsels(0, 1).empty());
  EXPECT_TRUE(SplitMorsels(0, 8).empty());
}

TEST(RowAwareMorselSplitTest, FewerRowsThanThreadsGetsOneRowMorsels) {
  std::vector<MorselRange> morsels = SplitMorsels(3, 8);
  EXPECT_EQ(morsels.size(), 3u);
  ExpectExactCover(morsels, 3);
}

TEST(RowAwareMorselSplitTest, SmallInputStillOccupiesEveryThread) {
  // Under one target-morsel of rows, the splitter still cuts min(n,
  // threads) morsels so a permitted-parallel query is not serialised.
  std::vector<MorselRange> morsels = SplitMorsels(100, 4);
  EXPECT_EQ(morsels.size(), 4u);
  ExpectExactCover(morsels, 100);
}

TEST(RowAwareMorselSplitTest, SerialSplitOfSmallInputIsOneMorsel) {
  std::vector<MorselRange> morsels = SplitMorsels(500, 1);
  EXPECT_EQ(morsels.size(), 1u);
  ExpectExactCover(morsels, 500);
}

TEST(RowAwareMorselSplitTest, LargeInputTargetsMorselSizedChunks) {
  // 10 × kMorselTargetRows rows with 2 threads: the row target, not the
  // thread count, decides the morsel count, exposing steal parallelism.
  const size_t n = 10 * kMorselTargetRows;
  std::vector<MorselRange> morsels = SplitMorsels(n, 2);
  EXPECT_EQ(morsels.size(), 10u);
  for (const MorselRange& m : morsels) EXPECT_EQ(m.size(), kMorselTargetRows);
  ExpectExactCover(morsels, n);
}

TEST(RowAwareMorselSplitTest, HugeInputIsCappedAtMaxMorsels) {
  const size_t n = size_t{1} << 20;
  std::vector<MorselRange> morsels = SplitMorsels(n, 8);
  EXPECT_EQ(morsels.size(), kMaxMorselsPerDispatch);
  ExpectExactCover(morsels, n);
}

// ------------------------------------------------ shared fixtures for e2e

/// X(e, d) ⋈ Y(a, b) on d = b with a heavily skewed key distribution:
/// half of each table lands on one hot key, so static per-thread splits
/// would leave one straggler morsel holding half the probe work.
void LoadSkewedTables(Database* db, int num_x, int num_y, int hot_key) {
  TMDB_ASSERT_OK(db->CreateTable("X", Type::Tuple({{"e", Type::Int()},
                                                   {"d", Type::Int()}}))
                     .status());
  TMDB_ASSERT_OK(db->CreateTable("Y", Type::Tuple({{"a", Type::Int()},
                                                   {"b", Type::Int()}}))
                     .status());
  Random rng(23);
  for (int i = 0; i < num_x; ++i) {
    const int d = (i % 2 == 0) ? hot_key : rng.UniformInt(0, 40);
    TMDB_ASSERT_OK(db->Insert("X", IntRow({"e", "d"}, {i, d})));
  }
  for (int i = 0; i < num_y; ++i) {
    const int b = (i % 2 == 0) ? hot_key : rng.UniformInt(0, 40);
    TMDB_ASSERT_OK(db->Insert("Y", IntRow({"a", "b"}, {i, b})));
  }
}

void ExpectIdenticalRows(const std::vector<Value>& actual,
                         const std::vector<Value>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(actual[i].Equals(expected[i])) << "row " << i;
  }
}

/// The scheduling-independent work counters. The scheduler's own telemetry
/// (morsels_dispatched / morsels_stolen) is deliberately absent: dispatched
/// depends on the thread cap, stolen on timing.
void ExpectSameWorkStats(const ExecStats& a, const ExecStats& b) {
  EXPECT_EQ(a.rows_emitted, b.rows_emitted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.subplan_evals, b.subplan_evals);
  EXPECT_EQ(a.hash_probes, b.hash_probes);
  EXPECT_EQ(a.rows_built, b.rows_built);
  EXPECT_EQ(a.subplan_cache_hits, b.subplan_cache_hits);
  EXPECT_EQ(a.subplan_cache_misses, b.subplan_cache_misses);
  EXPECT_EQ(a.subplan_cache_evictions, b.subplan_cache_evictions);
}

// ----------------------------------------------------- no-churn regression

TEST(ExecutorChurnTest, MixedThreadCountsOnAReusedExecutorCreateNoThreads) {
  Database db;
  LoadSkewedTables(&db, 120, 200, 7);
  const std::string query =
      "SELECT x FROM X x WHERE 1 IN (SELECT y.a FROM Y y WHERE x.d = y.b)";

  // Workers belong to the process-wide singleton; touch it first so its
  // one-time startup is not attributed to the executor under test.
  const uint64_t before = Scheduler::Global().threads_created();
  EXPECT_GE(before, 1u);

  Executor executor(1);
  std::vector<Value> reference;
  for (int round = 0; round < 3; ++round) {
    for (int threads : {1, 4, 2, 8, 3}) {
      RunOptions options;
      options.num_threads = threads;
      TMDB_ASSERT_OK_AND_ASSIGN(QueryResult result,
                                db.RunWith(query, options, &executor));
      if (reference.empty()) {
        reference = std::move(result.rows);
      } else {
        ExpectIdenticalRows(result.rows, reference);
      }
    }
  }
  // set_num_threads is a cap update, not a pool rebuild: fifteen runs over
  // five different widths must not have started a single OS thread.
  EXPECT_EQ(Scheduler::Global().threads_created(), before);
}

// ------------------------------------------------------- multi-query soak

TEST(MultiQuerySoakTest, ConcurrentTaggedQueriesMatchSerialWithNoStatBleed) {
  Database db;
  LoadSkewedTables(&db, 240, 420, 7);

  // Distinct shapes with distinct work counters, so any cross-query stat
  // bleed shows up as an exact-equality failure against the serial run.
  const std::vector<std::string> queries = {
      "SELECT x FROM X x WHERE 1 IN (SELECT y.a FROM Y y WHERE x.d = y.b)",
      "SELECT x FROM X x WHERE 2 NOT IN (SELECT y.a FROM Y y WHERE "
      "x.d = y.b)",
      "SELECT (e = x.e, n = count(SELECT y.a FROM Y y WHERE x.d = y.b)) "
      "FROM X x",
  };
  std::vector<QueryResult> serial;
  for (const std::string& query : queries) {
    RunOptions options;
    options.strategy = Strategy::kNestJoin;
    TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference, db.Run(query, options));
    serial.push_back(std::move(reference));
  }

  // Up to eight tagged queries in flight on the one scheduler, each with
  // its own cap, every result compared against its own serial reference.
  constexpr int kWorkers = 8;
  constexpr int kItersPerWorker = 3;
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int iter = 0; iter < kItersPerWorker; ++iter) {
        const size_t qi = (w + iter) % queries.size();
        RunOptions options;
        options.strategy = Strategy::kNestJoin;
        options.num_threads = 2 + (w % 4) * 2;  // caps 2, 4, 6, 8
        auto result = db.Run(queries[qi], options);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectIdenticalRows(result->rows, serial[qi].rows);
        ExpectSameWorkStats(result->stats, serial[qi].stats);
        // The scheduler telemetry is per-query: stolen never exceeds
        // dispatched, and a parallel run dispatched at least one morsel.
        EXPECT_GT(result->stats.morsels_dispatched, 0u);
        EXPECT_LE(result->stats.morsels_stolen,
                  result->stats.morsels_dispatched);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

TEST(MultiQuerySoakTest, CancellingOneQueryLeavesNeighboursUntouched) {
  Database db;
  LoadSkewedTables(&db, 260, 420, 7);
  const std::string heavy =
      "SELECT (e = x.e, n = count(SELECT y.a FROM Y y WHERE x.d = y.b)) "
      "FROM X x";
  const std::string light =
      "SELECT x FROM X x WHERE 1 IN (SELECT y.a FROM Y y WHERE x.d = y.b)";

  RunOptions light_options;
  light_options.strategy = Strategy::kNestJoin;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult light_serial,
                            db.Run(light, light_options));

  // Cancellation is per-query (the guard lives on the victim's executor);
  // tasks of other queries on the same workers must be untouched. The
  // cancel races the victim's completion, so retry until one lands mid-run
  // — every attempt exercises neighbour isolation either way.
  bool cancelled_once = false;
  for (int attempt = 0; attempt < 5 && !cancelled_once; ++attempt) {
    Executor victim(4);
    std::atomic<bool> saw_cancel{false};
    std::thread victim_thread([&] {
      RunOptions options;
      options.strategy = Strategy::kNaive;   // slow on purpose
      options.subplan_cache_bytes = 0;       // no memo: every row pays
      options.num_threads = 4;
      auto result = db.RunWith(heavy, options, &victim);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
            << result.status().ToString();
        saw_cancel.store(result.status().code() == StatusCode::kCancelled);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    victim.guard()->Cancel();

    // Neighbours keep running while the victim unwinds.
    for (int i = 0; i < 3; ++i) {
      RunOptions options = light_options;
      options.num_threads = 4;
      auto result = db.Run(light, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectIdenticalRows(result->rows, light_serial.rows);
      ExpectSameWorkStats(result->stats, light_serial.stats);
    }
    victim_thread.join();
    cancelled_once = saw_cancel.load();
  }
  EXPECT_TRUE(cancelled_once)
      << "victim always finished before the cancel landed";

  // And after the victim is gone the pool is still healthy.
  RunOptions options = light_options;
  options.num_threads = 8;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult after, db.Run(light, options));
  ExpectIdenticalRows(after.rows, light_serial.rows);
  ExpectSameWorkStats(after.stats, light_serial.stats);
}

}  // namespace
}  // namespace tmdb
