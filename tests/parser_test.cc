#include "parser/parser.h"

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

AstPtr MustParse(const std::string& text) {
  auto result = ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n  in: " << text;
  return result.ok() ? std::move(result).value() : nullptr;
}

TEST(LexerTest, TokenKinds) {
  TMDB_ASSERT_OK_AND_ASSIGN(auto tokens,
                            Tokenize("SELECT x.a <> 1.5 \"str\" <= {"));
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[4].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[5].kind, TokenKind::kRealLit);
  EXPECT_DOUBLE_EQ(tokens[5].real_value, 1.5);
  EXPECT_EQ(tokens[6].kind, TokenKind::kStringLit);
  EXPECT_EQ(tokens[6].text, "str");
  EXPECT_EQ(tokens[7].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[8].kind, TokenKind::kLBrace);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  TMDB_ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("select SeLeCt SELECT"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[1].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[2].kind, TokenKind::kSelect);
}

TEST(LexerTest, CommentsAndPositions) {
  TMDB_ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("a -- comment\n  b"));
  ASSERT_EQ(tokens.size(), 3u);  // a, b, EOF
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

TEST(ParserTest, PrecedenceArithmeticOverComparison) {
  AstPtr ast = MustParse("1 + 2 * 3 = 7");
  ASSERT_NE(ast, nullptr);
  EXPECT_EQ(ast->ToString(), "((1 + (2 * 3)) = 7)");
}

TEST(ParserTest, BooleanPrecedence) {
  AstPtr ast = MustParse("a = 1 AND b = 2 OR NOT c = 3");
  EXPECT_EQ(ast->ToString(), "(((a = 1) AND (b = 2)) OR NOT (c = 3))");
}

TEST(ParserTest, SetOperators) {
  AstPtr ast = MustParse("a UNION b INTERSECT c DIFF d");
  // INTERSECT binds tighter than UNION/DIFF.
  EXPECT_EQ(ast->ToString(), "((a UNION (b INTERSECT c)) DIFF d)");
  AstPtr cmp = MustParse("a SUBSETEQ b");
  EXPECT_EQ(cmp->kind, AstKind::kBinary);
  EXPECT_EQ(cmp->binary_op, AstBinaryOp::kSubsetEq);
}

TEST(ParserTest, NotIn) {
  AstPtr ast = MustParse("x NOT IN s");
  EXPECT_EQ(ast->kind, AstKind::kBinary);
  EXPECT_EQ(ast->binary_op, AstBinaryOp::kNotIn);
  // NOT (x IN s) parses as unary NOT.
  AstPtr ast2 = MustParse("NOT (x IN s)");
  EXPECT_EQ(ast2->kind, AstKind::kUnary);
}

TEST(ParserTest, TupleCtorVsParenExpr) {
  AstPtr tuple = MustParse("(a = 1, b = 2)");
  EXPECT_EQ(tuple->kind, AstKind::kTupleCtor);
  ASSERT_EQ(tuple->ctor_names.size(), 2u);
  EXPECT_EQ(tuple->ctor_names[0], "a");

  AstPtr paren = MustParse("(1 + 2)");
  EXPECT_EQ(paren->kind, AstKind::kBinary);
}

TEST(ParserTest, SetCtor) {
  AstPtr set = MustParse("{1, 2, 3}");
  EXPECT_EQ(set->kind, AstKind::kSetCtor);
  EXPECT_EQ(set->children.size(), 3u);
  AstPtr empty = MustParse("{}");
  EXPECT_EQ(empty->children.size(), 0u);
}

TEST(ParserTest, FieldAccessChains) {
  AstPtr ast = MustParse("d.address.city");
  EXPECT_EQ(ast->kind, AstKind::kFieldAccess);
  EXPECT_EQ(ast->name, "city");
  EXPECT_EQ(ast->children[0]->kind, AstKind::kFieldAccess);
  EXPECT_EQ(ast->children[0]->name, "address");
}

TEST(ParserTest, SfwBasic) {
  AstPtr ast = MustParse("SELECT x.a FROM R x WHERE x.b = 1");
  ASSERT_EQ(ast->kind, AstKind::kSfw);
  ASSERT_EQ(ast->from.size(), 1u);
  EXPECT_EQ(ast->from[0].var, "x");
  EXPECT_NE(ast->where_expr, nullptr);
  EXPECT_EQ(ast->select_expr->kind, AstKind::kFieldAccess);
}

TEST(ParserTest, SfwWithoutWhere) {
  AstPtr ast = MustParse("SELECT d FROM DEPT d");
  ASSERT_EQ(ast->kind, AstKind::kSfw);
  EXPECT_EQ(ast->where_expr, nullptr);
}

TEST(ParserTest, SfwMultipleFrom) {
  AstPtr ast = MustParse("SELECT x FROM R x, S y, T z");
  ASSERT_EQ(ast->kind, AstKind::kSfw);
  EXPECT_EQ(ast->from.size(), 3u);
  EXPECT_EQ(ast->from[2].var, "z");
}

TEST(ParserTest, NestedSfwInWhere) {
  AstPtr ast = MustParse(
      "SELECT x FROM R x WHERE x.b IN (SELECT y.d FROM S y WHERE x.c = y.c)");
  ASSERT_EQ(ast->kind, AstKind::kSfw);
  const AstNode& where = *ast->where_expr;
  EXPECT_EQ(where.kind, AstKind::kBinary);
  EXPECT_EQ(where.binary_op, AstBinaryOp::kIn);
  EXPECT_EQ(where.children[1]->kind, AstKind::kSfw);
}

TEST(ParserTest, WithClauseAfterWhere) {
  AstPtr ast = MustParse(
      "SELECT x FROM R x WHERE x.a SUBSETEQ z "
      "WITH z = (SELECT y.a FROM S y WHERE x.b = y.b)");
  ASSERT_EQ(ast->kind, AstKind::kSfw);
  ASSERT_EQ(ast->where_with.size(), 1u);
  EXPECT_EQ(ast->where_with[0].name, "z");
  EXPECT_EQ(ast->where_with[0].expr->kind, AstKind::kSfw);
}

TEST(ParserTest, ChainedWithDefs) {
  AstPtr ast = MustParse(
      "SELECT x FROM R x WHERE a = b WITH a = x.p WITH b = x.q");
  ASSERT_EQ(ast->where_with.size(), 2u);
  EXPECT_EQ(ast->where_with[0].name, "a");
  EXPECT_EQ(ast->where_with[1].name, "b");
}

TEST(ParserTest, QuantifiersAndAggregates) {
  AstPtr q = MustParse("EXISTS v IN s (v = 1)");
  EXPECT_EQ(q->kind, AstKind::kQuantifier);
  EXPECT_EQ(q->quant_kind, AstQuantKind::kExists);
  AstPtr f = MustParse("FORALL w IN x.a (w IN z)");
  EXPECT_EQ(f->quant_kind, AstQuantKind::kForAll);
  AstPtr c = MustParse("count(s) = 0");
  EXPECT_EQ(c->children[0]->kind, AstKind::kAggregate);
  EXPECT_EQ(c->children[0]->agg_func, AstAggFunc::kCount);
  MustParse("sum(s) + avg(s) + min(s) + max(s)");
}

TEST(ParserTest, UnnestCall) {
  AstPtr ast = MustParse("UNNEST(SELECT x.s FROM R x)");
  EXPECT_EQ(ast->kind, AstKind::kUnnestCall);
  EXPECT_EQ(ast->children[0]->kind, AstKind::kSfw);
}

TEST(ParserTest, RoundTripToString) {
  // ToString output re-parses to the same rendering (idempotence).
  const std::string query =
      "SELECT (a = x.a, n = count(SELECT y FROM S y WHERE (x.b = y.b))) "
      "FROM R x WHERE (x.c > 0)";
  AstPtr once = MustParse(query);
  AstPtr twice = MustParse(once->ToString());
  EXPECT_EQ(once->ToString(), twice->ToString());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM R").ok());        // missing var
  EXPECT_FALSE(ParseQuery("SELECT x FROM R x WHERE").ok());
  EXPECT_FALSE(ParseQuery("1 +").ok());
  EXPECT_FALSE(ParseQuery("(a = 1").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM R x extra").ok());  // trailing junk
  EXPECT_FALSE(ParseQuery("EXISTS IN s (true)").ok());
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto result = ParseQuery("SELECT x FROM R x WHERE +");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos)
      << result.status().ToString();
}

TEST(CloneAstTest, DeepCopyIsIndependent) {
  AstPtr ast = MustParse("SELECT x.a FROM R x WHERE x.b = 1");
  AstPtr copy = CloneAst(*ast);
  EXPECT_EQ(ast->ToString(), copy->ToString());
  copy->from[0].var = "y";
  EXPECT_NE(ast->ToString(), copy->ToString());
}

}  // namespace
}  // namespace tmdb
