// Property-based validation: on randomly generated databases, every
// rewriting strategy must compute exactly the rows the naive nested-loop
// semantics computes, across a catalog of queries covering every predicate
// class of Table 2, SELECT-clause nesting, multi-level nesting, and the
// UNNEST special case. Parameterised over seeds (and therefore over data
// distributions: dense/sparse matches, empty sets, dangling rows).

#include <gtest/gtest.h>

#include "algebra/validate.h"
#include "base/random.h"
#include "core/database.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::RowsEqual;

/// Query templates over X(a : P(INT), b : INT, c : INT) and
/// Y(a : INT, b : INT, d : INT).
const char* kQueryCatalog[] = {
    // --- flat-join rewrites (Table 2, rewritable rows) ---
    // membership
    "SELECT x.c FROM X x WHERE x.c IN (SELECT y.a FROM Y y WHERE x.b = y.b)",
    "SELECT x.c FROM X x WHERE x.c NOT IN (SELECT y.a FROM Y y WHERE x.b = y.b)",
    // emptiness
    "SELECT x.c FROM X x WHERE (SELECT y.a FROM Y y WHERE x.b = y.b) = {}",
    "SELECT x.c FROM X x WHERE count(SELECT y.a FROM Y y WHERE x.b = y.b) = 0",
    "SELECT x.c FROM X x WHERE count(SELECT y.a FROM Y y WHERE x.b = y.b) > 0",
    // superset
    "SELECT x.c FROM X x WHERE x.a SUPSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)",
    // intersection emptiness
    "SELECT x.c FROM X x WHERE x.a INTERSECT (SELECT y.a FROM Y y WHERE x.b = y.b) = {}",
    "SELECT x.c FROM X x WHERE NOT (x.a INTERSECT (SELECT y.a FROM Y y WHERE x.b = y.b) = {})",
    // quantifiers
    "SELECT x.c FROM X x WHERE EXISTS v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (v > 2)",
    "SELECT x.c FROM X x WHERE FORALL v IN (SELECT y.a FROM Y y WHERE x.b = y.b) (v > 2)",
    "SELECT x.c FROM X x WHERE FORALL w IN x.a (w NOT IN (SELECT y.a FROM Y y WHERE x.b = y.b))",
    "SELECT x.c FROM X x WHERE EXISTS w IN x.a (w IN (SELECT y.a FROM Y y WHERE x.b = y.b))",
    // negation closure
    "SELECT x.c FROM X x WHERE NOT (x.c IN (SELECT y.a FROM Y y WHERE x.b = y.b))",

    // --- grouping rewrites (nest join) ---
    "SELECT x.c FROM X x WHERE x.c = count(SELECT y.a FROM Y y WHERE x.b = y.b)",
    "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)",
    "SELECT x.c FROM X x WHERE x.a SUBSET (SELECT y.a FROM Y y WHERE x.b = y.b)",
    "SELECT x.c FROM X x WHERE x.a = (SELECT y.a FROM Y y WHERE x.b = y.b)",
    "SELECT x.c FROM X x WHERE x.c <= sum(SELECT y.a FROM Y y WHERE x.b = y.b)"
    " AND count(SELECT y.a FROM Y y WHERE x.b = y.b) > 0",
    "SELECT x.c FROM X x WHERE FORALL w IN x.a (w IN (SELECT y.a FROM Y y WHERE x.b = y.b))",

    // --- mixed conjuncts: plain + flat + grouping in one WHERE ---
    "SELECT x.c FROM X x WHERE x.c > 2 AND x.c IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
    " AND x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)",

    // --- correlation on non-equality predicates (nest join still applies) ---
    "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b < y.b)",
    "SELECT x.c FROM X x WHERE x.c IN (SELECT y.a FROM Y y WHERE x.b <> y.b)",

    // --- SELECT-clause nesting ---
    "SELECT (c = x.c, zs = SELECT y.d FROM Y y WHERE x.b = y.b) FROM X x",
    "SELECT (c = x.c, n = count(SELECT y.d FROM Y y WHERE x.b = y.b)) FROM X x",

    // --- multi-level linear nesting (Section 8 shape) ---
    "SELECT x.c FROM X x WHERE x.a SUBSETEQ ("
    "SELECT y.a FROM Y y WHERE x.b = y.b AND y.d IN ("
    "SELECT y2.d FROM Y y2 WHERE y.a = y2.a))",
    "SELECT x.c FROM X x WHERE x.c IN ("
    "SELECT y.a FROM Y y WHERE x.b = y.b AND count("
    "SELECT y2.a FROM Y y2 WHERE y.d = y2.d) > 0)",

    // --- UNNEST special case ---
    "UNNEST(SELECT (SELECT (c = x.c, d = y.d) FROM Y y WHERE x.b = y.b) "
    "FROM X x)",

    // --- multiple subqueries in one conjunct (extension: stacked nest joins) ---
    "SELECT x.c FROM X x WHERE count(SELECT y.a FROM Y y WHERE x.b = y.b) = "
    "count(SELECT y2.d FROM Y y2 WHERE x.b = y2.b)",
    "SELECT x.c FROM X x WHERE (SELECT y.a FROM Y y WHERE x.b = y.b) = "
    "(SELECT y2.a FROM Y y2 WHERE x.c = y2.d)",

    // --- disjunction containing a subquery (grouping handles any shape) ---
    "SELECT x.c FROM X x WHERE x.c > 25 OR x.c IN "
    "(SELECT y.a FROM Y y WHERE x.b = y.b)",
};

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Random rng(GetParam());
    TMDB_ASSERT_OK_AND_ASSIGN(
        auto x,
        db_.CreateTable("X", Type::Tuple({{"a", Type::Set(Type::Int())},
                                          {"b", Type::Int()},
                                          {"c", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        auto y, db_.CreateTable("Y", Type::Tuple({{"a", Type::Int()},
                                                  {"b", Type::Int()},
                                                  {"d", Type::Int()}})));
    // Small domains make empty sets, dangling rows, and multi-matches all
    // likely within 30 rows.
    const int64_t b_domain = 1 + static_cast<int64_t>(rng.Uniform(12));
    const int64_t v_domain = 1 + static_cast<int64_t>(rng.Uniform(6));
    for (int i = 0; i < 30; ++i) {
      std::vector<Value> set_elems;
      const size_t n = rng.Uniform(4);  // 0..3 → empty sets are common
      for (size_t k = 0; k < n; ++k) {
        set_elems.push_back(Value::Int(rng.UniformInt(0, v_domain)));
      }
      TMDB_ASSERT_OK(db_.Insert(
          "X", Value::Tuple({"a", "b", "c"},
                            {Value::Set(std::move(set_elems)),
                             Value::Int(rng.UniformInt(0, b_domain)),
                             Value::Int(i)})));
    }
    for (int i = 0; i < 40; ++i) {
      Status s = db_.Insert(
          "Y", Value::Tuple({"a", "b", "d"},
                            {Value::Int(rng.UniformInt(0, v_domain)),
                             Value::Int(rng.UniformInt(0, b_domain)),
                             Value::Int(rng.UniformInt(0, 10))}));
      if (s.code() != StatusCode::kAlreadyExists) TMDB_ASSERT_OK(s);
    }
  }

  std::vector<Value> Run(const std::string& query, Strategy strategy,
                         JoinImpl impl = JoinImpl::kAuto) {
    RunOptions options;
    options.strategy = strategy;
    options.join_impl = impl;
    auto result = db_.Run(query, options);
    EXPECT_TRUE(result.ok())
        << StrategyName(strategy) << " failed: "
        << result.status().ToString() << "\n  on: " << query;
    return result.ok() ? std::move(result)->rows : std::vector<Value>();
  }

  Database db_;
};

TEST_P(PropertyTest, AllStrategiesMatchNaiveOnWholeCatalog) {
  for (const char* query : kQueryCatalog) {
    std::vector<Value> naive = Run(query, Strategy::kNaive);
    EXPECT_TRUE(RowsEqual(Run(query, Strategy::kNestJoin), naive))
        << "nestjoin diverged on: " << query;
    EXPECT_TRUE(RowsEqual(Run(query, Strategy::kNestJoinOnly), naive))
        << "nestjoin-only diverged on: " << query;
  }
}

TEST_P(PropertyTest, EveryPlanPassesValidation) {
  for (const char* query : kQueryCatalog) {
    for (Strategy strategy :
         {Strategy::kNaive, Strategy::kNestJoin, Strategy::kNestJoinOnly}) {
      auto plan = db_.Plan(query, strategy);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString() << "\n  " << query;
      TMDB_EXPECT_OK(ValidatePlan(**plan));
    }
  }
}

TEST_P(PropertyTest, JoinImplementationsAgreeOnRewrittenPlans) {
  for (const char* query : kQueryCatalog) {
    std::vector<Value> hash =
        Run(query, Strategy::kNestJoin, JoinImpl::kHash);
    EXPECT_TRUE(RowsEqual(
        Run(query, Strategy::kNestJoin, JoinImpl::kNestedLoop), hash))
        << "NL vs hash diverged on: " << query;
    EXPECT_TRUE(RowsEqual(
        Run(query, Strategy::kNestJoin, JoinImpl::kMerge), hash))
        << "merge vs hash diverged on: " << query;
  }
}

TEST_P(PropertyTest, OuterJoinStrategyMatchesNaiveOnTwoBlockQueries) {
  // Ganski–Wong supports the canonical two-block equijoin pattern.
  const char* two_block[] = {
      "SELECT x.c FROM X x WHERE x.c = count(SELECT y.a FROM Y y WHERE x.b = y.b)",
      "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)",
      "SELECT x.c FROM X x WHERE x.a = (SELECT y.a FROM Y y WHERE x.b = y.b)",
  };
  for (const char* query : two_block) {
    EXPECT_TRUE(RowsEqual(Run(query, Strategy::kOuterJoin),
                          Run(query, Strategy::kNaive)))
        << "outerjoin diverged on: " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace tmdb
