// Executor-reuse soak (the server's per-connection discipline, embedded):
// ~1000 small queries through ONE reused Executor with a seeded mix of
// clean runs, memory trips (with and without spill), row-budget trips,
// injected checkpoint faults, deadline trips, cross-thread cancels, and
// subplan-cache disk overflow — swept across strategies (naive, outerjoin,
// nest join) and join implementations (hash, sort-merge) so every spill
// path (partition spill, external sort, ν spill, cache overflow) unwinds
// through the reuse contract. After every run the executor must be
// indistinguishable from fresh: no residual trip state, no outstanding
// reservation bytes, no spill files. The deterministic subset of the
// schedule must produce identical status sequences and checkpoint totals
// across two runs with the same seed; on any failure the seed is printed
// (override with TMDB_NET_SEED). A final section drives the same database
// through the TCP front end and vanishes mid-query while sessions spill.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_injector.h"
#include "core/database.h"
#include "exec/executor.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

const char kNestedQuery[] =
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)";
const char kScanQuery[] = "SELECT x FROM R x WHERE x.b >= 0";

uint64_t TestSeed() {
  if (const char* env = std::getenv("TMDB_NET_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5EED50AEull;
}

/// One deterministic pass of the soak schedule. Returns the per-iteration
/// status codes and the summed guard checkpoints of the deterministic
/// iterations (cross-thread cancels race by design and are excluded).
struct SoakOutcome {
  std::vector<StatusCode> codes;
  uint64_t deterministic_checkpoints = 0;
  int ok_runs = 0;
  int trips = 0;
};

class ExecutorReuseSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CountBugConfig config;
    config.num_r = 24;
    // Enough S rows that the 16 KiB spill budget below genuinely forces the
    // hash-partition, external-sort, and ν write-out paths, while the soak
    // still runs in seconds.
    config.num_s = 240;
    ASSERT_TRUE(LoadCountBugTables(&db_, config).ok());
    spill_dir_ = std::filesystem::temp_directory_path() /
                 ("tmdb_reuse_soak_" + std::to_string(::getpid()));
    std::filesystem::create_directories(spill_dir_);
  }

  void TearDown() override {
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[executor_reuse_soak_test] TMDB_NET_SEED=%llu\n",
                   static_cast<unsigned long long>(TestSeed()));
    }
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  size_t SpillLeftovers() {
    size_t count = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(spill_dir_)) {
      (void)entry;
      ++count;
    }
    return count;
  }

  SoakOutcome RunSchedule(uint64_t seed, int iterations) {
    SoakOutcome outcome;
    std::mt19937_64 rng(seed);
    Executor executor(1);
    FaultInjector injector;
    for (int i = 0; i < iterations; ++i) {
      const int mode = static_cast<int>(rng() % 7);
      RunOptions options;
      options.spill_dir = spill_dir_.string();
      // Orthogonal sweep dimensions, drawn every iteration so the replay
      // stays aligned: which unnesting strategy plans the query and which
      // join implementation runs it (the merge join brings the external
      // sort into the budgeted modes, the outerjoin strategy brings ν*).
      const uint64_t strategy_pick = rng() % 4;
      options.join_impl =
          (rng() % 2 == 0) ? JoinImpl::kHash : JoinImpl::kMerge;
      const std::string query =
          (rng() % 2 == 0) ? kNestedQuery : kScanQuery;
      if (query == kNestedQuery) {
        // The baseline rewrites reject queries without a subquery conjunct,
        // so only the nested query sweeps away from the default strategy.
        options.strategy = strategy_pick == 0   ? Strategy::kNaive
                           : strategy_pick == 1 ? Strategy::kOuterJoin
                                                : Strategy::kNestJoin;
      }
      bool deterministic = true;
      std::thread canceller;
      switch (mode) {
        case 1:  // memory trip, fail-fast
          options.memory_budget_bytes = 1;
          break;
        case 2:  // memory trip, spill completes the query
          options.memory_budget_bytes = 16u << 10;
          options.enable_spill = true;
          break;
        case 3:  // row-budget trip
          options.max_rows = 1 + rng() % 4;
          break;
        case 4: {  // injected checkpoint fault (1-based nth)
          options.fault_injector = &injector;
          injector.ArmNth(1 + rng() % 20);
          break;
        }
        case 5: {  // cross-thread cancel: racy by design
          deterministic = false;
          const int delay_us = static_cast<int>(rng() % 500);
          QueryGuard* guard = executor.guard();
          canceller = std::thread([guard, delay_us] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay_us));
            guard->Cancel();
          });
          break;
        }
        case 6:  // subplan-cache thrash through the disk-overflow path
          options.strategy = Strategy::kNaive;  // correlated eval uses the cache
          options.subplan_cache_bytes = 1;
          options.enable_spill = true;
          break;
        default:
          break;
      }

      Result<QueryResult> result = db_.RunWith(query, options, &executor);
      if (canceller.joinable()) canceller.join();
      injector.Disarm();

      // --- clean-outcome contract: every run ends in OK or a typed trip.
      if (result.ok()) {
        ++outcome.ok_runs;
      } else {
        ++outcome.trips;
        const StatusCode code = result.status().code();
        EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kCancelled ||
                    code == StatusCode::kInternal ||  // injected checkpoint
                    code == StatusCode::kIoError)
            << "iteration " << i
            << " untyped failure: " << result.status().ToString();
      }

      // --- reuse contract: nothing carries over to the next query.
      EXPECT_FALSE(executor.guard()->last_trip_was_memory())
          << "residual memory-trip record after iteration " << i;
      EXPECT_EQ(executor.guard()->materialized_bytes(), 0)
          << "outstanding GuardReservation bytes after iteration " << i;
      EXPECT_EQ(SpillLeftovers(), 0u)
          << "leaked spill files after iteration " << i;

      if (deterministic) {
        outcome.codes.push_back(result.ok() ? StatusCode::kOk
                                            : result.status().code());
        outcome.deterministic_checkpoints +=
            executor.guard()->checkpoints();
      } else {
        // Keep the schedule aligned across replays: the racy iteration
        // contributes a placeholder, not its (nondeterministic) outcome.
        outcome.codes.push_back(StatusCode::kOk);
      }
    }
    return outcome;
  }

  Database db_;
  std::filesystem::path spill_dir_;
};

TEST_F(ExecutorReuseSoakTest, ThousandQueriesOneExecutorNothingLeaks) {
  constexpr int kIterations = 1000;
  const uint64_t seed = TestSeed();

  const SoakOutcome first = RunSchedule(seed, kIterations);
  ASSERT_EQ(first.codes.size(), static_cast<size_t>(kIterations));
  // The schedule genuinely exercised both outcomes.
  EXPECT_GT(first.ok_runs, 0);
  EXPECT_GT(first.trips, 0);

  // Replay: same seed, fresh executor. The deterministic subset must
  // reproduce exactly — statuses and guard-checkpoint totals.
  const SoakOutcome second = RunSchedule(seed, kIterations);
  EXPECT_EQ(first.codes, second.codes);
  EXPECT_EQ(first.deterministic_checkpoints,
            second.deterministic_checkpoints);
  EXPECT_GT(first.deterministic_checkpoints, 0u);
}

TEST_F(ExecutorReuseSoakTest, SpillTripThenCleanQueryStaysIndependent) {
  Executor executor(1);
  // Query 1: memory trip without spill -> kResourceExhausted, trip state
  // recorded during the run.
  RunOptions tripped;
  tripped.memory_budget_bytes = 1;
  Result<QueryResult> trip = db_.RunWith(kNestedQuery, tripped, &executor);
  ASSERT_FALSE(trip.ok());
  EXPECT_EQ(trip.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(executor.guard()->last_trip_was_memory())
      << "trip state must be cleared when the run ends";

  // Query 2 on the same executor: unbudgeted, must be untouched.
  Result<QueryResult> clean =
      db_.RunWith(kNestedQuery, RunOptions(), &executor);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // And its rows match a fresh executor's.
  Result<QueryResult> reference = db_.Run(kNestedQuery, RunOptions());
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(clean->rows.size(), reference->rows.size());
  for (size_t i = 0; i < clean->rows.size(); ++i) {
    EXPECT_TRUE(clean->rows[i] == reference->rows[i]) << "row " << i;
  }
}

TEST_F(ExecutorReuseSoakTest, TcpDisconnectsMidSpillLeaveNoResidue) {
  // The same reuse discipline through the TCP front end: clients submit
  // budgeted spilling queries and vanish — immediately, or a randomised
  // moment into execution. Every abandoned session must cancel its query,
  // unwind its (reused, per-session) executor, and remove its spill files;
  // afterwards a well-behaved client still gets the right answer.
  ServerOptions options;
  options.spill_dir = spill_dir_.string();
  QueryServer server(&db_, std::move(options));
  ASSERT_TRUE(server.Start().ok());

  auto wait_for = [](auto predicate, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!predicate()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  };

  std::mt19937_64 rng(TestSeed());
  for (int i = 0; i < 25; ++i) {
    Result<Socket> sock = Socket::ConnectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(sock.ok()) << sock.status().ToString();
    WireRequest request;
    request.query = kNestedQuery;
    request.timeout_ms = 30000;
    request.memory_budget_bytes = 16u << 10;
    request.enable_spill = true;
    Frame frame;
    frame.type = FrameType::kQuery;
    frame.request_id = static_cast<uint64_t>(i);
    EncodeRequest(request, &frame.payload);
    ASSERT_TRUE(WriteFrame(&*sock, nullptr, frame).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(rng() % 3000));
    // Socket destructor: the client vanishes, possibly mid-spill.
  }

  ASSERT_TRUE(wait_for([&] { return server.stats().sessions_active == 0; }))
      << "abandoned sessions never unwound";
  ASSERT_TRUE(wait_for([&] { return SpillLeftovers() == 0; }))
      << "disconnected sessions leaked spill files";

  QueryClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  WireRequest request;
  request.query = kNestedQuery;
  // Larger than the vanished clients' budget: tight enough to spill, roomy
  // enough that the hash join's skew depth-bound cannot trip it.
  request.memory_budget_bytes = 64u << 10;
  request.enable_spill = true;
  Result<ClientResult> wire = client.Run(request);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  Result<QueryResult> local = db_.Run(kNestedQuery, RunOptions());
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(wire->rows.size(), local->rows.size());
  for (size_t i = 0; i < wire->rows.size(); ++i) {
    EXPECT_TRUE(wire->rows[i] == local->rows[i]) << "row " << i;
  }
  EXPECT_EQ(SpillLeftovers(), 0u);
  server.Shutdown();
}

}  // namespace
}  // namespace tmdb
