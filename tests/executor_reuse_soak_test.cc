// Executor-reuse soak (the server's per-connection discipline, embedded):
// ~1000 small queries through ONE reused Executor with a seeded mix of
// clean runs, memory trips (with and without spill), row-budget trips,
// injected checkpoint faults, deadline trips, and cross-thread cancels.
// After every run the executor must be indistinguishable from fresh: no
// residual trip state, no outstanding reservation bytes, no spill files.
// The deterministic subset of the schedule must produce identical status
// sequences and checkpoint totals across two runs with the same seed; on
// any failure the seed is printed (override with TMDB_NET_SEED).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_injector.h"
#include "core/database.h"
#include "exec/executor.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

const char kNestedQuery[] =
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)";
const char kScanQuery[] = "SELECT x FROM R x WHERE x.b >= 0";

uint64_t TestSeed() {
  if (const char* env = std::getenv("TMDB_NET_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5EED50AEull;
}

/// One deterministic pass of the soak schedule. Returns the per-iteration
/// status codes and the summed guard checkpoints of the deterministic
/// iterations (cross-thread cancels race by design and are excluded).
struct SoakOutcome {
  std::vector<StatusCode> codes;
  uint64_t deterministic_checkpoints = 0;
  int ok_runs = 0;
  int trips = 0;
};

class ExecutorReuseSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CountBugConfig config;
    config.num_r = 12;
    config.num_s = 24;
    ASSERT_TRUE(LoadCountBugTables(&db_, config).ok());
    spill_dir_ = std::filesystem::temp_directory_path() /
                 ("tmdb_reuse_soak_" + std::to_string(::getpid()));
    std::filesystem::create_directories(spill_dir_);
  }

  void TearDown() override {
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[executor_reuse_soak_test] TMDB_NET_SEED=%llu\n",
                   static_cast<unsigned long long>(TestSeed()));
    }
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  size_t SpillLeftovers() {
    size_t count = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(spill_dir_)) {
      (void)entry;
      ++count;
    }
    return count;
  }

  SoakOutcome RunSchedule(uint64_t seed, int iterations) {
    SoakOutcome outcome;
    std::mt19937_64 rng(seed);
    Executor executor(1);
    FaultInjector injector;
    for (int i = 0; i < iterations; ++i) {
      const int mode = static_cast<int>(rng() % 6);
      RunOptions options;
      options.spill_dir = spill_dir_.string();
      const std::string query =
          (rng() % 2 == 0) ? kNestedQuery : kScanQuery;
      bool deterministic = true;
      std::thread canceller;
      switch (mode) {
        case 1:  // memory trip, fail-fast
          options.memory_budget_bytes = 1;
          break;
        case 2:  // memory trip, spill completes the query
          options.memory_budget_bytes = 16u << 10;
          options.enable_spill = true;
          break;
        case 3:  // row-budget trip
          options.max_rows = 1 + rng() % 4;
          break;
        case 4: {  // injected checkpoint fault (1-based nth)
          options.fault_injector = &injector;
          injector.ArmNth(1 + rng() % 20);
          break;
        }
        case 5: {  // cross-thread cancel: racy by design
          deterministic = false;
          const int delay_us = static_cast<int>(rng() % 500);
          QueryGuard* guard = executor.guard();
          canceller = std::thread([guard, delay_us] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay_us));
            guard->Cancel();
          });
          break;
        }
        default:
          break;
      }

      Result<QueryResult> result = db_.RunWith(query, options, &executor);
      if (canceller.joinable()) canceller.join();
      injector.Disarm();

      // --- clean-outcome contract: every run ends in OK or a typed trip.
      if (result.ok()) {
        ++outcome.ok_runs;
      } else {
        ++outcome.trips;
        const StatusCode code = result.status().code();
        EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kCancelled ||
                    code == StatusCode::kInternal ||  // injected checkpoint
                    code == StatusCode::kIoError)
            << "iteration " << i
            << " untyped failure: " << result.status().ToString();
      }

      // --- reuse contract: nothing carries over to the next query.
      EXPECT_FALSE(executor.guard()->last_trip_was_memory())
          << "residual memory-trip record after iteration " << i;
      EXPECT_EQ(executor.guard()->materialized_bytes(), 0)
          << "outstanding GuardReservation bytes after iteration " << i;
      EXPECT_EQ(SpillLeftovers(), 0u)
          << "leaked spill files after iteration " << i;

      if (deterministic) {
        outcome.codes.push_back(result.ok() ? StatusCode::kOk
                                            : result.status().code());
        outcome.deterministic_checkpoints +=
            executor.guard()->checkpoints();
      } else {
        // Keep the schedule aligned across replays: the racy iteration
        // contributes a placeholder, not its (nondeterministic) outcome.
        outcome.codes.push_back(StatusCode::kOk);
      }
    }
    return outcome;
  }

  Database db_;
  std::filesystem::path spill_dir_;
};

TEST_F(ExecutorReuseSoakTest, ThousandQueriesOneExecutorNothingLeaks) {
  constexpr int kIterations = 1000;
  const uint64_t seed = TestSeed();

  const SoakOutcome first = RunSchedule(seed, kIterations);
  ASSERT_EQ(first.codes.size(), static_cast<size_t>(kIterations));
  // The schedule genuinely exercised both outcomes.
  EXPECT_GT(first.ok_runs, 0);
  EXPECT_GT(first.trips, 0);

  // Replay: same seed, fresh executor. The deterministic subset must
  // reproduce exactly — statuses and guard-checkpoint totals.
  const SoakOutcome second = RunSchedule(seed, kIterations);
  EXPECT_EQ(first.codes, second.codes);
  EXPECT_EQ(first.deterministic_checkpoints,
            second.deterministic_checkpoints);
  EXPECT_GT(first.deterministic_checkpoints, 0u);
}

TEST_F(ExecutorReuseSoakTest, SpillTripThenCleanQueryStaysIndependent) {
  Executor executor(1);
  // Query 1: memory trip without spill -> kResourceExhausted, trip state
  // recorded during the run.
  RunOptions tripped;
  tripped.memory_budget_bytes = 1;
  Result<QueryResult> trip = db_.RunWith(kNestedQuery, tripped, &executor);
  ASSERT_FALSE(trip.ok());
  EXPECT_EQ(trip.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(executor.guard()->last_trip_was_memory())
      << "trip state must be cleared when the run ends";

  // Query 2 on the same executor: unbudgeted, must be untouched.
  Result<QueryResult> clean =
      db_.RunWith(kNestedQuery, RunOptions(), &executor);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // And its rows match a fresh executor's.
  Result<QueryResult> reference = db_.Run(kNestedQuery, RunOptions());
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(clean->rows.size(), reference->rows.size());
  for (size_t i = 0; i < clean->rows.size(); ++i) {
    EXPECT_TRUE(clean->rows[i] == reference->rows[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace tmdb
