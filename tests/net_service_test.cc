// End-to-end tests for the TCP query service: queries over the wire match
// embedded execution, admission control rejects overload with typed
// frames, vanished clients cancel their queries, injected wire faults
// unwind cleanly on both sides, and teardown leaks nothing. The soak test
// drives >= 8 concurrent connections through normal, disconnect,
// timeout, rejection, and wire-fault modes; on any failure it prints the
// seed so the run reproduces (override with TMDB_NET_SEED).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_injector.h"
#include "core/database.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

const char kNestedQuery[] =
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)";
const char kScanQuery[] = "SELECT x FROM R x WHERE x.b >= 0";

uint64_t TestSeed() {
  if (const char* env = std::getenv("TMDB_NET_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xC0FFEE5EEDull;
}

class NetServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CountBugConfig config;
    config.num_r = 30;
    config.num_s = 60;
    ASSERT_TRUE(LoadCountBugTables(&db_, config).ok());
    spill_dir_ = std::filesystem::temp_directory_path() /
                 ("tmdb_net_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(spill_dir_);
  }

  void TearDown() override {
    server_.reset();
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[net_service_test] TMDB_NET_SEED=%llu\n",
                   static_cast<unsigned long long>(TestSeed()));
    }
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);
  }

  void StartServer(ServerOptions options) {
    options.spill_dir = spill_dir_.string();
    options.fault_injector = &injector_;
    server_ = std::make_unique<QueryServer>(&db_, std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  QueryClient MakeClient() {
    QueryClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  /// Spill directories are per-query and removed on every outcome; after
  /// the wire traffic quiesces nothing may remain.
  void ExpectNoLeakedSpillFiles() {
    size_t leftovers = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(spill_dir_)) {
      ++leftovers;
      ADD_FAILURE() << "leaked spill path: " << entry.path();
    }
    EXPECT_EQ(leftovers, 0u);
  }

  /// Waits (bounded) until `predicate` holds; false on timeout.
  template <typename Pred>
  bool WaitFor(Pred predicate, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!predicate()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  Database db_;
  FaultInjector injector_;
  std::filesystem::path spill_dir_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(NetServiceTest, WireResultsMatchEmbeddedExecution) {
  StartServer(ServerOptions());
  QueryClient client = MakeClient();

  Result<ClientResult> wire = client.Run(kNestedQuery);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_TRUE(wire->has_grant);
  EXPECT_GE(wire->grant.active_queries, 1u);

  Result<QueryResult> local = db_.Run(kNestedQuery, RunOptions());
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(wire->rows.size(), local->rows.size());
  for (size_t i = 0; i < wire->rows.size(); ++i) {
    EXPECT_TRUE(wire->rows[i] == local->rows[i]) << "row " << i;
  }
  // Stats travelled too: the wire run did real work.
  EXPECT_EQ(wire->stats.rows_emitted, local->stats.rows_emitted);
  EXPECT_GT(wire->stats.guard_checkpoints, 0u);
}

TEST_F(NetServiceTest, DdlAndDmlRunOverTheWire) {
  StartServer(ServerOptions());
  QueryClient client = MakeClient();

  Result<ClientResult> created =
      client.Run("CREATE TABLE T (a : INT, b : INT)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_FALSE(created->message.empty());

  Result<ClientResult> inserted =
      client.Run("INSERT INTO T VALUES (a = 1, b = 2), (a = 3, b = 4)");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  Result<ClientResult> rows = client.Run("SELECT t FROM T t WHERE t.a = 3");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 1u);
}

TEST_F(NetServiceTest, GuardTripsRenderExactlyLikeTheRepl) {
  StartServer(ServerOptions());
  QueryClient client = MakeClient();

  WireRequest request;
  request.query = kNestedQuery;
  request.max_rows = 2;
  Result<ClientResult> wire = client.Run(request);
  ASSERT_FALSE(wire.ok());
  EXPECT_EQ(wire.status().code(), StatusCode::kResourceExhausted);

  RunOptions options;
  options.max_rows = 2;
  Result<QueryResult> local = db_.Run(kNestedQuery, options);
  ASSERT_FALSE(local.ok());
  // One Status-code -> message mapping for every front end: the wire
  // message IS the REPL rendering of the same failure.
  EXPECT_EQ(wire.status().message(), FormatStatusForUser(local.status()));
}

TEST_F(NetServiceTest, MalformedRequestsGetTypedErrorsAndKeepTheSession) {
  StartServer(ServerOptions());
  QueryClient client = MakeClient();

  Result<ClientResult> bad = client.Run("SELECT FROM WHERE");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().code(), StatusCode::kIoError);

  WireRequest request;
  request.query = kScanQuery;
  request.strategy = "no-such-strategy";
  Result<ClientResult> unknown = client.Run(request);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  // The connection survived both failures.
  Result<ClientResult> ok = client.Run(kScanQuery);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(NetServiceTest, ExecutorReuseAcrossQueriesCarriesNoTripState) {
  StartServer(ServerOptions());
  QueryClient client = MakeClient();

  for (int round = 0; round < 10; ++round) {
    WireRequest tripped;
    tripped.query = kNestedQuery;
    tripped.memory_budget_bytes = 1;  // memory trip, spill disabled
    Result<ClientResult> trip = client.Run(tripped);
    ASSERT_FALSE(trip.ok());
    EXPECT_EQ(trip.status().code(), StatusCode::kResourceExhausted)
        << trip.status().ToString();

    // Same session, same executor: the next unbudgeted query must be
    // untouched by the previous trip.
    Result<ClientResult> clean = client.Run(kScanQuery);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_EQ(clean->rows.size(), 30u);
  }
  ExpectNoLeakedSpillFiles();
}

TEST_F(NetServiceTest, OverloadGetsTypedRejectionAndRetrySucceeds) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  options.admission.max_queue_depth = 0;
  options.admission.retry_after_ms = 5;
  StartServer(std::move(options));

  // Occupy the only slot directly, so the rejection is deterministic.
  Result<AdmissionGrant> held = server_->admission()->Admit(0);
  ASSERT_TRUE(held.ok());

  QueryClient client = MakeClient();
  Result<ClientResult> rejected = client.Run(kScanQuery);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(QueryClient::WasRejected(rejected.status()))
      << rejected.status().ToString();
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.last_retry_after_ms(), 5u);
  EXPECT_EQ(server_->stats().queries_rejected, 1u);

  // Free the slot from a helper thread while the client retries.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server_->admission()->Release();
  });
  WireRequest request;
  request.query = kScanQuery;
  Result<ClientResult> retried = client.RunWithRetry(request, 50);
  releaser.join();
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST_F(NetServiceTest, VanishedClientCancelsItsQueryAndFreesTheSlot) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  options.admission.max_queue_depth = 0;
  StartServer(std::move(options));

  // Raw socket: send a query with a long timeout, then vanish without
  // reading the response.
  {
    Result<Socket> sock = Socket::ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(sock.ok());
    WireRequest request;
    request.query = kNestedQuery;
    request.strategy = "naive";
    request.timeout_ms = 60000;
    Frame frame;
    frame.type = FrameType::kQuery;
    frame.request_id = 1;
    EncodeRequest(request, &frame.payload);
    ASSERT_TRUE(WriteFrame(&*sock, nullptr, frame).ok());
  }  // socket closes here — the client is gone

  // The session must notice, cancel through the guard, and release its
  // admission slot; with max_concurrent = 1 the next query proves it.
  EXPECT_TRUE(WaitFor([&] {
    const ServerStatsSnapshot stats = server_->stats();
    return stats.queries_disconnected + stats.queries_ok +
               stats.queries_error >= 1;
  })) << "query neither finished nor was cancelled after disconnect";
  EXPECT_TRUE(WaitFor([&] { return server_->admission()->active() == 0; }))
      << "admission slot leaked after disconnect";

  QueryClient client = MakeClient();
  Result<ClientResult> after = client.Run(kScanQuery);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  ExpectNoLeakedSpillFiles();
}

TEST_F(NetServiceTest, CancelFrameStopsTheQueryWithCancelled) {
  StartServer(ServerOptions());

  Result<Socket> sock = Socket::ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(sock.ok());
  WireRequest request;
  request.query = kNestedQuery;
  request.strategy = "naive";
  request.timeout_ms = 60000;
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.request_id = 9;
  EncodeRequest(request, &frame.payload);
  ASSERT_TRUE(WriteFrame(&*sock, nullptr, frame).ok());

  // Read the grant, then cancel.
  Frame in;
  bool eof = false;
  ASSERT_TRUE(ReadFrame(&*sock, nullptr, &in, &eof).ok());
  ASSERT_FALSE(eof);
  ASSERT_EQ(in.type, FrameType::kAccepted);

  Frame cancel;
  cancel.type = FrameType::kCancel;
  cancel.request_id = 9;
  ASSERT_TRUE(WriteFrame(&*sock, nullptr, cancel).ok());

  // The terminator is either kError(kCancelled) — the cancel landed while
  // the query ran — or, if the query finished first, rows + kDone.
  bool saw_terminator = false;
  bool was_cancelled = false;
  for (int i = 0; i < 1000 && !saw_terminator; ++i) {
    ASSERT_TRUE(ReadFrame(&*sock, nullptr, &in, &eof).ok());
    ASSERT_FALSE(eof);
    if (in.type == FrameType::kError) {
      WireError error;
      ASSERT_TRUE(DecodeError(in.payload, &error).ok());
      EXPECT_EQ(error.code, StatusCode::kCancelled);
      EXPECT_NE(error.message.find("query cancelled"), std::string::npos)
          << error.message;
      was_cancelled = true;
      saw_terminator = true;
    } else if (in.type == FrameType::kDone) {
      saw_terminator = true;
    }
  }
  EXPECT_TRUE(saw_terminator);
  (void)was_cancelled;
  // Either way the cancel frame is eventually consumed and counted —
  // mid-query (cancelling the run) or idle (a no-op between queries).
  EXPECT_TRUE(WaitFor([&] { return server_->stats().cancel_frames == 1; }));
}

TEST_F(NetServiceTest, ClientSideWireFaultSweepPoisonsOnlyTheConnection) {
  StartServer(ServerOptions());

  const WireFaultKind kinds[] = {
      WireFaultKind::kShortWrite, WireFaultKind::kTornFrame,
      WireFaultKind::kCorruptCrc, WireFaultKind::kDisconnect,
      WireFaultKind::kShortRead};
  FaultInjector client_injector;
  for (const WireFaultKind kind : kinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    QueryClient client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", server_->port(), 5000).ok());
    client.set_fault_injector(&client_injector);
    // Send faults fire on the request frame; the recv fault fires on the
    // first response read. Either way Run fails with kIoError.
    client_injector.ArmWire(kind, 1);
    Result<ClientResult> result = client.Run(kScanQuery);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError)
        << result.status().ToString();
    // The wire error killed this connection...
    EXPECT_FALSE(client.connected());
    client_injector.DisarmWire();
  }

  // ...but never the server: a fresh client works, and the server's error
  // counters moved without any session thread leaking.
  QueryClient fresh = MakeClient();
  Result<ClientResult> ok = fresh.Run(kScanQuery);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(WaitFor([&] { return server_->stats().sessions_active <= 1; }));
}

TEST_F(NetServiceTest, ServerSideInjectedFaultsUnwindCleanly) {
  StartServer(ServerOptions());

  // Accept failure: the listener shrugs it off and keeps serving.
  injector_.ArmWire(WireFaultKind::kAcceptFail, 1);
  QueryClient client = MakeClient();
  Result<ClientResult> ok = client.Run(kScanQuery);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(WaitFor([&] { return server_->stats().accept_failures >= 1; }));
  injector_.DisarmWire();

  // Injected disconnect mid-result-stream: the server cuts the connection
  // while streaming; the client sees a clean kIoError; the server counts
  // the query as disconnected and survives.
  QueryClient victim = MakeClient();
  injector_.ArmWire(WireFaultKind::kDisconnect, 3);  // accepted, rows, ...
  Result<ClientResult> torn = victim.Run(kScanQuery);
  injector_.DisarmWire();
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(WaitFor([&] {
    return server_->stats().queries_disconnected >= 1;
  }));

  QueryClient fresh = MakeClient();
  Result<ClientResult> after = fresh.Run(kScanQuery);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  ExpectNoLeakedSpillFiles();
}

TEST_F(NetServiceTest, GracefulShutdownWithBusyConnections) {
  ServerOptions options;
  options.admission.max_concurrent = 4;
  StartServer(std::move(options));

  // A few idle connections plus one mid-query.
  QueryClient idle1 = MakeClient();
  QueryClient idle2 = MakeClient();
  Result<Socket> busy = Socket::ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(busy.ok());
  WireRequest request;
  request.query = kNestedQuery;
  request.strategy = "naive";
  request.timeout_ms = 60000;
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.request_id = 5;
  EncodeRequest(request, &frame.payload);
  ASSERT_TRUE(WriteFrame(&*busy, nullptr, frame).ok());
  ASSERT_TRUE(WaitFor([&] { return server_->stats().queries_started >= 1; }));

  // Shutdown must cancel the running query, join every session thread, and
  // return; calling it again (and via the destructor) is a no-op.
  server_->Shutdown();
  server_->Shutdown();
  EXPECT_EQ(server_->stats().sessions_active, 0u);
  ExpectNoLeakedSpillFiles();
  server_.reset();
}

// The acceptance soak: >= 8 concurrent connections, each mixing normal
// queries, guard trips, admission rejections, cancels, and abrupt
// disconnects, under a seeded schedule. Every outcome must be a clean
// typed Status, and afterwards nothing may leak: no admission slots, no
// session threads, no spill files.
TEST_F(NetServiceTest, ConcurrentConnectionSoak) {
  ServerOptions options;
  options.admission.max_concurrent = 4;
  options.admission.max_queue_depth = 2;
  options.admission.default_queue_wait_ms = 2000;
  options.admission.total_memory_bytes = 64ull << 20;
  StartServer(std::move(options));

  constexpr int kThreads = 8;
  constexpr int kIterations = 12;
  const uint64_t seed = TestSeed();

  std::atomic<int> unexpected{0};
  std::atomic<int> ok_count{0};
  std::atomic<int> typed_failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(seed ^ (0x9E3779B97F4A7C15ull * (t + 1)));
      for (int i = 0; i < kIterations; ++i) {
        const int mode = static_cast<int>(rng() % 5);
        if (mode == 4) {
          // Abrupt disconnect, possibly mid-query.
          Result<Socket> sock =
              Socket::ConnectTcp("127.0.0.1", server_->port());
          if (!sock.ok()) {
            unexpected.fetch_add(1);
            continue;
          }
          WireRequest request;
          request.query = kNestedQuery;
          request.timeout_ms = 30000;
          Frame frame;
          frame.type = FrameType::kQuery;
          frame.request_id = static_cast<uint64_t>(t) * 1000 + i;
          EncodeRequest(request, &frame.payload);
          (void)WriteFrame(&*sock, nullptr, frame);
          continue;  // socket destructor = vanish
        }
        QueryClient client;
        if (!client.Connect("127.0.0.1", server_->port(), 10000).ok()) {
          unexpected.fetch_add(1);
          continue;
        }
        WireRequest request;
        request.query = (rng() % 2 == 0) ? kNestedQuery : kScanQuery;
        switch (mode) {
          case 1:  // row-budget trip
            request.max_rows = 1 + rng() % 3;
            break;
          case 2:  // wall-clock trip (may legitimately finish in time)
            request.timeout_ms = 1;
            break;
          case 3:  // memory trip, sometimes spilling its way through
            request.memory_budget_bytes = (8u << 10) + rng() % (32u << 10);
            request.enable_spill = rng() % 2 == 0;
            break;
          default:
            break;
        }
        Result<ClientResult> result = client.Run(request);
        if (result.ok()) {
          ok_count.fetch_add(1);
          continue;
        }
        switch (result.status().code()) {
          case StatusCode::kResourceExhausted:
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kCancelled:
            typed_failures.fetch_add(1);
            break;
          default:
            unexpected.fetch_add(1);
            ADD_FAILURE() << "thread " << t << " iter " << i
                          << " unexpected status: "
                          << result.status().ToString();
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(ok_count.load(), 0);

  // Quiesce: every session that lost its client must unwind by itself.
  EXPECT_TRUE(WaitFor([&] { return server_->stats().sessions_active == 0; }))
      << "session threads still alive after clients left";
  EXPECT_TRUE(WaitFor([&] { return server_->admission()->active() == 0; }))
      << "admission slots leaked";
  EXPECT_EQ(server_->admission()->queued(), 0);

  const ServerStatsSnapshot stats = server_->stats();
  // Every started query ended in exactly one bucket.
  EXPECT_EQ(stats.queries_started,
            stats.queries_ok + stats.queries_error + stats.queries_rejected +
                stats.queries_disconnected);

  ExpectNoLeakedSpillFiles();
  server_->Shutdown();
  EXPECT_EQ(server_->stats().sessions_active, 0u);
}

}  // namespace
}  // namespace tmdb
