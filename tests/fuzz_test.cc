// Robustness fuzzing (deterministic, seed-parameterised):
//  - random byte strings and random token soups must never crash the
//    lexer/parser — every input either parses or returns ParseError;
//  - mutations of valid queries (token deletion/duplication/swap) must
//    never crash the whole pipeline (parse → bind → rewrite → plan);
//  - parse → print → reparse is a fixed point for valid queries.

#include <gtest/gtest.h>

#include "base/fault_injector.h"
#include "base/random.h"
#include "core/database.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "parser/statement.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

const char* kSeedQueries[] = {
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)",
    "SELECT (a = x.a, zs = SELECT y.d FROM S y WHERE x.c = y.c) FROM R x",
    "SELECT x.a FROM R x WHERE x.a IN (SELECT y.d FROM S y) AND x.b > 0 "
    "OR NOT EXISTS v IN {1, 2} (v = x.a)",
    "UNNEST(SELECT (SELECT (a = x.a, d = y.d) FROM S y WHERE x.c = y.c) "
    "FROM R x)",
    "SELECT x FROM R x WHERE count(z) = 0 WITH z = (SELECT y FROM S y "
    "WHERE x.c = y.c)",
};

const char* kTokens[] = {
    "SELECT", "FROM",  "WHERE", "WITH",  "IN",    "NOT",   "AND",  "OR",
    "EXISTS", "FORALL", "count", "sum",  "UNNEST", "UNION", "DIFF",
    "SUBSETEQ", "(",   ")",     "{",     "}",     ",",     ".",    "=",
    "<>",     "<",     "<=",    ">",     ">=",    "+",     "-",    "*",
    "/",      "x",     "y",     "R",     "S",     "1",     "2.5",  "\"s\"",
    "true",   "false", ":",     ";",     "CREATE", "TABLE", "INSERT",
    "INTO",   "VALUES",
};

class FuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK(db_.ExecuteScript(
                       "CREATE TABLE R (a : INT, b : INT, c : INT);"
                       "CREATE TABLE S (c : INT, d : INT);"
                       "INSERT INTO R VALUES (a = 1, b = 0, c = 7);"
                       "INSERT INTO S VALUES (c = 7, d = 3)")
                     .status());
  }

  /// Drives the full pipeline; only *whether it crashes* matters.
  void Pipeline(const std::string& text) {
    auto result = db_.Run(text);
    (void)result.ok();
    auto statement = db_.Execute(text);
    (void)statement.ok();
  }

  Database db_;
};

TEST_P(FuzzTest, RandomBytesNeverCrash) {
  Random rng(GetParam() * 7919 + 1);
  for (int iter = 0; iter < 200; ++iter) {
    std::string input;
    const size_t len = rng.Uniform(120);
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(32 + rng.Uniform(95));  // printable ASCII
    }
    Pipeline(input);
  }
}

TEST_P(FuzzTest, TokenSoupNeverCrashes) {
  Random rng(GetParam() * 104729 + 2);
  for (int iter = 0; iter < 300; ++iter) {
    std::string input;
    const size_t len = 1 + rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      input += kTokens[rng.Uniform(std::size(kTokens))];
      input += ' ';
    }
    Pipeline(input);
  }
}

TEST_P(FuzzTest, MutatedQueriesNeverCrash) {
  Random rng(GetParam() * 1299709 + 3);
  for (const char* seed_query : kSeedQueries) {
    TMDB_ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize(seed_query));
    for (int iter = 0; iter < 60; ++iter) {
      // Re-render the token list with one random mutation.
      std::vector<std::string> words;
      for (const Token& t : tokens) {
        if (t.kind == TokenKind::kEof) break;
        if (t.kind == TokenKind::kStringLit) {
          words.push_back("\"" + t.text + "\"");
        } else {
          words.push_back(t.text);
        }
      }
      if (words.empty()) continue;
      switch (rng.Uniform(3)) {
        case 0:  // delete a token
          words.erase(words.begin() +
                      static_cast<long>(rng.Uniform(words.size())));
          break;
        case 1: {  // duplicate a token
          const size_t i = rng.Uniform(words.size());
          words.insert(words.begin() + static_cast<long>(i), words[i]);
          break;
        }
        default: {  // swap two tokens
          const size_t i = rng.Uniform(words.size());
          const size_t j = rng.Uniform(words.size());
          std::swap(words[i], words[j]);
          break;
        }
      }
      std::string input;
      for (const std::string& w : words) {
        input += w;
        input += ' ';
      }
      Pipeline(input);
    }
  }
}

TEST_P(FuzzTest, CorpusUnderFaultInjectionNeverCrashes) {
  // The whole seed corpus, executed while a rate-armed injector poisons a
  // slice of the guard checkpoints: every run either succeeds or returns a
  // clean Status, and a disarmed rerun always succeeds afterwards.
  FaultInjector injector;
  RunOptions poisoned;
  poisoned.fault_injector = &injector;
  for (double rate : {0.01, 0.25, 1.0}) {
    for (const char* seed_query : kSeedQueries) {
      const Status baseline = db_.Run(seed_query).status();
      injector.ArmRate(rate, GetParam() * 31 + static_cast<uint64_t>(
                                                   rate * 100));
      auto run = db_.Run(seed_query, poisoned);
      if (!run.ok() && baseline.ok()) {
        // A clean query may only fail with the injected fault itself.
        EXPECT_EQ(run.status().code(), StatusCode::kInternal)
            << run.status().ToString();
      }
      injector.Disarm();
      EXPECT_EQ(db_.Run(seed_query).status().code(), baseline.code());
    }
  }
}

TEST_P(FuzzTest, ParsePrintReparseIsStable) {
  for (const char* seed_query : kSeedQueries) {
    TMDB_ASSERT_OK_AND_ASSIGN(AstPtr once, ParseQuery(seed_query));
    const std::string printed = once->ToString();
    TMDB_ASSERT_OK_AND_ASSIGN(AstPtr twice, ParseQuery(printed));
    EXPECT_EQ(printed, twice->ToString()) << "not a fixed point: "
                                          << seed_query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace tmdb
