// Cross-cutting coverage: language-level arithmetic/comparison semantics,
// runtime error propagation, environment rebinding, numeric hashing edge
// cases, and baseline-rewrite error surfaces.

#include <gtest/gtest.h>

#include "core/database.h"
#include "expr/eval.h"
#include "rewrite/baselines.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::RowsEqual;

class LanguageSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK(db_.ExecuteScript(
                       "CREATE TABLE T (s : STRING, i : INT, r : REAL);"
                       "INSERT INTO T VALUES (s = \"apple\", i = 4, r = 0.5),"
                       "  (s = \"banana\", i = 0, r = 2.5)")
                     .status());
  }
  Database db_;
};

TEST_F(LanguageSemanticsTest, StringOrderingInPredicates) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result, db_.Run("SELECT t.s FROM T t WHERE t.s < \"b\""));
  EXPECT_TRUE(RowsEqual(result.rows, {Value::String("apple")}));
}

TEST_F(LanguageSemanticsTest, MixedNumericArithmetic) {
  // INT * REAL promotes to REAL; comparison is numeric across kinds.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result,
      db_.Run("SELECT t.s FROM T t WHERE t.i * t.r = 2"));
  EXPECT_TRUE(RowsEqual(result.rows, {Value::String("apple")}));
}

TEST_F(LanguageSemanticsTest, DivisionByZeroSurfacesAsError) {
  auto result = db_.Run("SELECT 10 / t.i FROM T t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("zero"), std::string::npos);
}

TEST_F(LanguageSemanticsTest, ShortCircuitGuardsRuntimeErrors) {
  // The i = 0 row would divide by zero, but the guard evaluates first;
  // the i = 4 row passes (integer division: 10 / 4 = 2).
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result,
      db_.Run("SELECT t.s FROM T t WHERE t.i > 0 AND 10 / t.i = 2"));
  EXPECT_TRUE(RowsEqual(result.rows, {Value::String("apple")}));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result2,
      db_.Run("SELECT t.s FROM T t WHERE NOT (t.i > 0) OR 10 / t.i > 1"));
  EXPECT_EQ(result2.rows.size(), 2u);
}

TEST_F(LanguageSemanticsTest, SetExpressionsInSelectClause) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result,
      db_.Run("SELECT ({t.i} UNION {7}) INTERSECT {0, 7} FROM T t "
              "WHERE t.i = 0"));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(result.rows[0].Equals(
      Value::Set({Value::Int(0), Value::Int(7)})));
}

TEST(EnvironmentTest, RebindWithinFrameOverwrites) {
  Environment env;
  env.Bind("x", Value::Int(1));
  env.Bind("x", Value::Int(2));
  ASSERT_NE(env.Lookup("x"), nullptr);
  EXPECT_EQ(env.Lookup("x")->AsInt(), 2);
  EXPECT_EQ(env.Lookup("y"), nullptr);
}

TEST(ValueHashEdgeTest, SignedZeroAndNumericKinds) {
  EXPECT_TRUE(Value::Real(0.0).Equals(Value::Real(-0.0)));
  EXPECT_EQ(Value::Real(0.0).Hash(), Value::Real(-0.0).Hash());
  EXPECT_TRUE(Value::Int(0).Equals(Value::Real(-0.0)));
  EXPECT_EQ(Value::Int(0).Hash(), Value::Real(-0.0).Hash());
}

class BaselineErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK(db_.ExecuteScript(
                       "CREATE TABLE X (a : P(INT), b : INT);"
                       "CREATE TABLE Y (a : INT, b : INT)")
                     .status());
  }

  Status KimStatus(const std::string& query) {
    auto plan = db_.Plan(query, Strategy::kKim);
    return plan.ok() ? Status::OK() : plan.status();
  }

  Database db_;
};

TEST_F(BaselineErrorTest, KimRejectsNonEquiCorrelation) {
  Status s = KimStatus(
      "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
      "WHERE x.b < y.b)");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
}

TEST_F(BaselineErrorTest, KimRejectsUncorrelatedSubquery) {
  EXPECT_FALSE(
      KimStatus("SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y)")
          .ok());
}

TEST_F(BaselineErrorTest, KimRejectsQueryWithoutSubquery) {
  EXPECT_FALSE(KimStatus("SELECT x FROM X x WHERE x.b > 0").ok());
}

TEST_F(BaselineErrorTest, KimRejectsGReferencingOuter) {
  EXPECT_FALSE(KimStatus("SELECT x FROM X x WHERE x.a SUBSETEQ "
                         "(SELECT y.a + x.b FROM Y y WHERE x.b = y.b)")
                   .ok());
}

TEST_F(BaselineErrorTest, MultipleSubqueryConjunctsUnsupportedByBaselines) {
  EXPECT_FALSE(KimStatus(
                   "SELECT x FROM X x WHERE "
                   "count(SELECT y.a FROM Y y WHERE x.b = y.b) = "
                   "count(SELECT y2.b FROM Y y2 WHERE x.b = y2.b)")
                   .ok());
}

}  // namespace
}  // namespace tmdb
