// End-to-end smoke test of the naive path: parse → bind → execute.
// The detailed per-module behaviour is covered by the dedicated test files;
// this one pins the plumbing between them.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "parser/parser.h"
#include "sema/binder.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntRow;
using testutil::RowsEqual;

class PipelineSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // R(a, b) and S(b, c) — classic two-table setup.
    Type r_schema = Type::Tuple({{"a", Type::Int()}, {"b", Type::Int()}});
    Type s_schema = Type::Tuple({{"b", Type::Int()}, {"c", Type::Int()}});
    TMDB_ASSERT_OK_AND_ASSIGN(auto r, catalog_.CreateTable("R", r_schema));
    TMDB_ASSERT_OK_AND_ASSIGN(auto s, catalog_.CreateTable("S", s_schema));
    TMDB_ASSERT_OK(r->InsertAll({
        IntRow({"a", "b"}, {1, 10}),
        IntRow({"a", "b"}, {2, 20}),
        IntRow({"a", "b"}, {3, 30}),
    }));
    TMDB_ASSERT_OK(s->InsertAll({
        IntRow({"b", "c"}, {10, 100}),
        IntRow({"b", "c"}, {10, 101}),
        IntRow({"b", "c"}, {30, 300}),
    }));
  }

  Result<std::vector<Value>> RunQuery(const std::string& text) {
    TMDB_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(text));
    Binder binder(&catalog_);
    TMDB_ASSIGN_OR_RETURN(LogicalOpPtr plan, binder.BindQuery(*ast));
    Executor executor;
    return executor.Run(plan);
  }

  Catalog catalog_;
};

TEST_F(PipelineSmokeTest, SimpleSelectWhere) {
  TMDB_ASSERT_OK_AND_ASSIGN(auto rows,
                            RunQuery("SELECT x.a FROM R x WHERE x.b > 15"));
  EXPECT_TRUE(RowsEqual(rows, {Value::Int(2), Value::Int(3)}));
}

TEST_F(PipelineSmokeTest, SelectWholeTuple) {
  TMDB_ASSERT_OK_AND_ASSIGN(auto rows, RunQuery("SELECT x FROM R x"));
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(PipelineSmokeTest, CorrelatedSubqueryInWhere) {
  // x.b IN (SELECT y.b FROM S y WHERE y.c < 200): matches b=10 only.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto rows,
      RunQuery("SELECT x.a FROM R x "
               "WHERE x.b IN (SELECT y.b FROM S y WHERE y.c < 200)"));
  EXPECT_TRUE(RowsEqual(rows, {Value::Int(1)}));
}

TEST_F(PipelineSmokeTest, CountBetweenBlocksNaive) {
  // count of matching S rows per R row: b=10 → 2, b=20 → 0, b=30 → 1.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto rows,
      RunQuery("SELECT (a = x.a, n = count(SELECT y FROM S y "
               "WHERE x.b = y.b)) FROM R x"));
  EXPECT_TRUE(RowsEqual(
      rows, {IntRow({"a", "n"}, {1, 2}), IntRow({"a", "n"}, {2, 0}),
             IntRow({"a", "n"}, {3, 1})}));
}

TEST_F(PipelineSmokeTest, WithClauseInlines) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto rows,
      RunQuery("SELECT x.a FROM R x WHERE count(z) = 0 "
               "WITH z = (SELECT y FROM S y WHERE x.b = y.b)"));
  EXPECT_TRUE(RowsEqual(rows, {Value::Int(2)}));
}

TEST_F(PipelineSmokeTest, QuantifierOverSubquery) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto rows,
      RunQuery("SELECT x.a FROM R x WHERE EXISTS v IN "
               "(SELECT y.c FROM S y WHERE x.b = y.b) (v > 200)"));
  EXPECT_TRUE(RowsEqual(rows, {Value::Int(3)}));
}

TEST_F(PipelineSmokeTest, MultiFromFlatJoin) {
  // Flat join query (the form Kim's algorithm produces).
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto rows, RunQuery("SELECT (a = x.a, c = y.c) FROM R x, S y "
                          "WHERE x.b = y.b"));
  EXPECT_TRUE(RowsEqual(rows, {IntRow({"a", "c"}, {1, 100}),
                               IntRow({"a", "c"}, {1, 101}),
                               IntRow({"a", "c"}, {3, 300})}));
}

TEST_F(PipelineSmokeTest, UnnestCollapsesNestedSelect) {
  // UNNEST(SELECT (SELECT ...)) — the Section 5 special case.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto rows,
      RunQuery("UNNEST(SELECT (SELECT (a = x.a, c = y.c) FROM S y "
               "WHERE x.b = y.b) FROM R x)"));
  EXPECT_TRUE(RowsEqual(rows, {IntRow({"a", "c"}, {1, 100}),
                               IntRow({"a", "c"}, {1, 101}),
                               IntRow({"a", "c"}, {3, 300})}));
}

TEST_F(PipelineSmokeTest, ParseErrorsSurface) {
  EXPECT_FALSE(RunQuery("SELECT FROM").ok());
  EXPECT_FALSE(RunQuery("SELECT x FROM NoSuchTable x").ok());
  EXPECT_FALSE(RunQuery("SELECT x.nosuchattr FROM R x").ok());
}

}  // namespace
}  // namespace tmdb
