// Columnar execution must be invisible except in speed: for every query,
// RunOptions::enable_columnar on vs off produces BIT-IDENTICAL rows (order
// included) and identical ExecStats (guard_checkpoints excepted — the two
// paths checkpoint on different schedules), serial and parallel, spill on
// and off. Also unit-tests the pieces: ColumnStore kind-exactness and
// dictionary rep-sharing, ColumnPredicate compilation and semantics,
// ResolveFastKeys, arena charging through the guard, the Charge()
// granularity contract, and fault-injection sweeps over the new
// checkpoints.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injector.h"
#include "catalog/table.h"
#include "core/database.h"
#include "exec/arena.h"
#include "exec/basic_ops.h"
#include "exec/columnar.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/query_guard.h"
#include "optimizer/planner.h"
#include "tests/test_util.h"
#include "values/column_store.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using testutil::IntRow;

/// The fuzz corpus: every nested-query shape the suite seeds from, over the
/// Section 2 R(a,b,c) / S(c,d) schema.
const char* kSeedQueries[] = {
    "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
    "WHERE x.c = y.c)",
    "SELECT (a = x.a, zs = SELECT y.d FROM S y WHERE x.c = y.c) FROM R x",
    "SELECT x.a FROM R x WHERE x.a IN (SELECT y.d FROM S y) AND x.b > 0 "
    "OR NOT EXISTS v IN {1, 2} (v = x.a)",
    "UNNEST(SELECT (SELECT (a = x.a, d = y.d) FROM S y WHERE x.c = y.c) "
    "FROM R x)",
    "SELECT x FROM R x WHERE count(z) = 0 WITH z = (SELECT y FROM S y "
    "WHERE x.c = y.c)",
};

::testing::AssertionResult BitIdentical(const std::vector<Value>& actual,
                                        const std::vector<Value>& expected) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << actual.size() << " vs "
           << expected.size();
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    if (!actual[i].Equals(expected[i])) {
      return ::testing::AssertionFailure()
             << "row " << i << " differs: " << actual[i].ToString() << " vs "
             << expected[i].ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

/// Full ExecStats equality except guard_checkpoints (schedule-dependent:
/// the columnar path checkpoints per batch, the row path per row group).
::testing::AssertionResult StatsMatch(const ExecStats& a, const ExecStats& b) {
#define TMDB_STAT_EQ(field)                                          \
  if (a.field != b.field) {                                          \
    return ::testing::AssertionFailure()                             \
           << #field " differs: " << a.field << " vs " << b.field;   \
  }
  TMDB_STAT_EQ(rows_emitted);
  TMDB_STAT_EQ(predicate_evals);
  TMDB_STAT_EQ(subplan_evals);
  TMDB_STAT_EQ(hash_probes);
  TMDB_STAT_EQ(rows_built);
  TMDB_STAT_EQ(spill_partitions);
  TMDB_STAT_EQ(spill_bytes_written);
  TMDB_STAT_EQ(spill_bytes_read);
  TMDB_STAT_EQ(spill_max_depth);
  TMDB_STAT_EQ(spill_sort_runs);
  TMDB_STAT_EQ(subplan_cache_hits);
  TMDB_STAT_EQ(subplan_cache_misses);
  TMDB_STAT_EQ(subplan_cache_evictions);
  TMDB_STAT_EQ(subplan_cache_disk_evictions);
  TMDB_STAT_EQ(subplan_cache_disk_faults);
#undef TMDB_STAT_EQ
  return ::testing::AssertionSuccess();
}

/// Runs `query` with columnar off (reference) and on, asserting identical
/// rows and stats. No memory budget here: budgets can make spill decisions
/// diverge between paths (different transient footprints), which is
/// covered separately with rows-only equality.
void ExpectColumnarParity(Database* db, const std::string& query,
                          RunOptions options) {
  options.enable_columnar = false;
  auto row_result = db->Run(query, options);
  options.enable_columnar = true;
  auto col_result = db->Run(query, options);
  ASSERT_EQ(row_result.ok(), col_result.ok())
      << "one path failed: row="
      << (row_result.ok() ? "ok" : row_result.status().ToString())
      << " col=" << (col_result.ok() ? "ok" : col_result.status().ToString());
  if (!row_result.ok()) {
    EXPECT_EQ(row_result.status().code(), col_result.status().code());
    return;
  }
  EXPECT_TRUE(BitIdentical(col_result->rows, row_result->rows));
  EXPECT_TRUE(StatsMatch(col_result->stats, row_result->stats));
}

// ------------------------------------------------ end-to-end query parity

class ColumnarQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CountBugConfig rs;
    rs.num_r = 120;
    rs.num_s = 240;
    TMDB_ASSERT_OK(LoadCountBugTables(&db_, rs));
  }

  Database db_;
};

TEST_F(ColumnarQueryTest, CorpusParityAcrossThreadsAndStrategies) {
  for (const char* query : kSeedQueries) {
    for (Strategy strategy : {Strategy::kNestJoin, Strategy::kOuterJoin}) {
      for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(std::string(query) + " / threads=" +
                     std::to_string(threads));
        RunOptions options;
        options.strategy = strategy;
        options.num_threads = threads;
        ExpectColumnarParity(&db_, query, options);
      }
    }
  }
}

TEST_F(ColumnarQueryTest, CountBugShapeAllStrategies) {
  // The COUNT-bug query itself: Kim's strategy is deliberately wrong, but
  // it must be *identically* wrong with columnar on.
  const std::string query = kSeedQueries[0];
  for (Strategy strategy : {Strategy::kNaive, Strategy::kKim,
                            Strategy::kOuterJoin, Strategy::kNestJoin}) {
    SCOPED_TRACE(StrategyName(strategy));
    RunOptions options;
    options.strategy = strategy;
    ExpectColumnarParity(&db_, query, options);
  }
}

TEST_F(ColumnarQueryTest, SubsetBugShape) {
  Database db;
  SubsetBugConfig config;
  config.num_x = 80;
  config.num_y = 160;
  TMDB_ASSERT_OK(LoadSubsetBugTables(&db, config));
  // X.a is set-valued, so X never columnarises — the fallback must be
  // transparent while Y (flat) still takes the fast paths.
  const std::string query =
      "SELECT x FROM X x WHERE FORALL y IN "
      "(SELECT y FROM Y y WHERE x.b = y.b) (EXISTS v IN x.a (v = y.a))";
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RunOptions options;
    options.num_threads = threads;
    ExpectColumnarParity(&db_, kSeedQueries[1], options);
    ExpectColumnarParity(&db, query, options);
  }
}

TEST_F(ColumnarQueryTest, SpillParityRowsOnly) {
  // Under a budget the two paths may spill at different points (their
  // transient footprints differ), so only the rows are compared — each
  // against its own unbudgeted run, which the spill tests already prove
  // bit-identical.
  for (const char* query : {kSeedQueries[0], kSeedQueries[1]}) {
    for (int threads : {1, 2}) {
      SCOPED_TRACE(std::string(query) + " / threads=" +
                   std::to_string(threads));
      RunOptions reference;
      reference.num_threads = threads;
      reference.enable_columnar = true;
      TMDB_ASSERT_OK_AND_ASSIGN(QueryResult expected,
                                db_.Run(query, reference));

      RunOptions budgeted = reference;
      budgeted.memory_budget_bytes = 96 << 10;
      budgeted.enable_spill = true;
      auto spilled = db_.Run(query, budgeted);
      budgeted.enable_columnar = false;
      auto row_spilled = db_.Run(query, budgeted);
      // enable_columnar must not change the budgeted outcome: both paths
      // succeed (with rows identical to the unbudgeted run) or both trip
      // with the same code — the fast paths stand down under a budget.
      ASSERT_EQ(spilled.ok(), row_spilled.ok())
          << "columnar="
          << (spilled.ok() ? "ok" : spilled.status().ToString())
          << " row="
          << (row_spilled.ok() ? "ok" : row_spilled.status().ToString());
      if (spilled.ok()) {
        EXPECT_TRUE(BitIdentical(spilled->rows, expected.rows));
        EXPECT_TRUE(BitIdentical(row_spilled->rows, expected.rows));
      } else {
        EXPECT_EQ(spilled.status().code(), row_spilled.status().code());
      }
    }
  }
}

TEST_F(ColumnarQueryTest, MemoryBudgetStillTripsWithColumnarEnabled) {
  // With enable_columnar set, a budget far below the working set must trip
  // exactly as before — the columnar machinery neither hides allocations
  // from the guard (ArenaTest proves arena charges land) nor bypasses the
  // budget (fast paths stand down under one).
  RunOptions options;
  options.enable_columnar = true;
  options.memory_budget_bytes = 2 << 10;  // 2 KiB: below one arena block
  auto result = db_.Run(kSeedQueries[0], options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  // The database stays usable afterwards.
  options.memory_budget_bytes = 0;
  TMDB_ASSERT_OK(db_.Run(kSeedQueries[0], options).status());
}

// -------------------------------------------------- fault-injection sweep

TEST_F(ColumnarQueryTest, FaultSweepOverColumnarCheckpoints) {
  // Every guard checkpoint the columnar plan passes — arena binding,
  // column-batch boundaries, fast-build loops included — must unwind to a
  // clean error and leave the database reusable with identical results.
  FaultInjector injector;
  RunOptions options;
  options.enable_columnar = true;
  options.fault_injector = &injector;

  injector.ArmNth(0);  // count-only
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                            db_.Run(kSeedQueries[0], options));
  const uint64_t total = injector.checkpoints_seen();
  ASSERT_GT(total, 0u);

  const uint64_t stride = std::max<uint64_t>(1, total / 16);
  for (uint64_t n = 1; n <= total; n += stride) {
    injector.ArmNth(n);
    auto poisoned = db_.Run(kSeedQueries[0], options);
    ASSERT_FALSE(poisoned.ok()) << "checkpoint " << n << " did not fire";
    EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal)
        << poisoned.status().ToString();

    injector.Disarm();
    TMDB_ASSERT_OK_AND_ASSIGN(QueryResult recovered,
                              db_.Run(kSeedQueries[0], options));
    ASSERT_TRUE(BitIdentical(recovered.rows, baseline.rows))
        << "state leaked across fault at checkpoint " << n;
  }
}

// ------------------------------------------------------------ ColumnStore

TEST(ColumnStoreTest, BuildsFlatBasicTables) {
  Type schema = Type::Tuple({{"i", Type::Int()},
                             {"r", Type::Real()},
                             {"b", Type::Bool()},
                             {"s", Type::String()}});
  std::vector<Value> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back(Value::Tuple(
        {"i", "r", "b", "s"},
        {Value::Int(i), Value::Real(i * 0.5), Value::Bool(i % 2 == 0),
         Value::String(i % 3 == 0 ? "fizz" : "buzz")}));
  }
  auto store = ColumnStore::Build(schema, rows);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->num_rows(), 10u);
  EXPECT_EQ(store->num_columns(), 4u);
  EXPECT_EQ(store->column(store->ColumnIndex("i")).i64[3], 3);
  EXPECT_EQ(store->column(store->ColumnIndex("r")).f64[4], 2.0);
  EXPECT_EQ(store->column(store->ColumnIndex("b")).b8[2], 1);
  // Two distinct strings → a two-entry dictionary.
  const Column& s = store->column(store->ColumnIndex("s"));
  ASSERT_NE(s.dict, nullptr);
  EXPECT_EQ(s.dict->size(), 2u);
  for (uint32_t id = 0; id < 10; ++id) {
    EXPECT_TRUE(store->RowValue(id).Equals(rows[id]));
  }
}

TEST(ColumnStoreTest, RefusesNonColumnarShapes) {
  // Set-valued attribute: not columnar.
  Type nested = Type::Tuple({{"a", Type::Set(Type::Int())}});
  std::vector<Value> rows = {
      Value::Tuple({"a"}, {Value::Set({Value::Int(1)})})};
  EXPECT_EQ(ColumnStore::Build(nested, rows), nullptr);

  // NULL in a fixed-width column: not columnar (row NULL semantics win).
  Type flat = Type::Tuple({{"i", Type::Int()}});
  rows = {Value::Tuple({"i"}, {Value::Null()})};
  EXPECT_EQ(ColumnStore::Build(flat, rows), nullptr);

  // Int value in a REAL attribute (ConformsTo admits it; the row path
  // compares Int/Int exactly where doubles round): kind-exactness refuses.
  Type real = Type::Tuple({{"r", Type::Real()}});
  rows = {Value::Tuple({"r"}, {Value::Int(7)})};
  EXPECT_EQ(ColumnStore::Build(real, rows), nullptr);
}

TEST(ColumnStoreTest, DictionaryAndRowsShareValueReps) {
  // The column → row round trip must hand back the ORIGINAL reps: RowValue
  // shares the inserted row's handle, and each dictionary code holds the
  // first-occurrence string handle. Identity is observable through the
  // address of the interned std::string payload.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto table,
      Table::Create("T", Type::Tuple({{"k", Type::Int()},
                                      {"s", Type::String()}})));
  for (int i = 0; i < 6; ++i) {
    TMDB_ASSERT_OK(table->Insert(
        Value::Tuple({"k", "s"}, {Value::Int(i),
                                  Value::String(i % 2 == 0 ? "even" : "odd")})));
  }
  auto store = table->columnar_store();
  ASSERT_NE(store, nullptr);
  const Column& s = store->column(store->ColumnIndex("s"));
  ASSERT_NE(s.dict, nullptr);
  EXPECT_EQ(s.dict->size(), 2u);
  for (uint32_t id = 0; id < 6; ++id) {
    const Value& original = table->rows()[id];
    // Row handles share reps with the table's rows.
    EXPECT_EQ(&store->RowValue(id).FindField("s")->AsString(),
              &original.FindField("s")->AsString());
    // The dictionary entry for this row's code is the first row that
    // carried the string — later equal strings re-use its rep.
    const Value& interned = s.dict->value(s.codes[id]);
    const Value& first = table->rows()[id % 2 == 0 ? 0 : 1];
    EXPECT_EQ(&interned.AsString(), &first.FindField("s")->AsString());
  }
  // The cache is stable across calls and invalidated by growth.
  EXPECT_EQ(table->columnar_store().get(), store.get());
  TMDB_ASSERT_OK(table->Insert(
      Value::Tuple({"k", "s"}, {Value::Int(100), Value::String("even")})));
  auto rebuilt = table->columnar_store();
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt.get(), store.get());
  EXPECT_EQ(rebuilt->num_rows(), 7u);
}

// -------------------------------------------------- physical-level filter

class ColumnarFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        table_,
        Table::Create("T", Type::Tuple({{"i", Type::Int()},
                                        {"r", Type::Real()},
                                        {"b", Type::Bool()},
                                        {"s", Type::String()}})));
    for (int i = 0; i < 3000; ++i) {
      TMDB_ASSERT_OK(table_->Insert(Value::Tuple(
          {"i", "r", "b", "s"},
          {Value::Int(i), Value::Real(i * 0.25), Value::Bool(i % 2 == 0),
           Value::String(i % 5 == 0 ? "lo" : "hi")})));
    }
  }

  /// σ_pred over a scan, columnar or row, and the run's stats.
  Result<std::vector<Value>> RunFilter(const Expr& pred, bool columnar,
                                       ExecStats* stats) {
    std::optional<ColumnPredicate> cpred;
    if (columnar) {
      cpred = ColumnPredicate::Compile(pred, "x", table_->schema());
      EXPECT_TRUE(cpred.has_value()) << pred.ToString();
    }
    FilterOp filter(PhysicalOpPtr(new TableScanOp(table_, columnar)), "x",
                    pred, std::move(cpred));
    Executor executor(1);
    auto rows = executor.RunPhysical(&filter);
    *stats = executor.stats();
    return rows;
  }

  void ExpectFilterParity(const Expr& pred) {
    ExecStats row_stats, col_stats;
    TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> expected,
                              RunFilter(pred, false, &row_stats));
    TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> actual,
                              RunFilter(pred, true, &col_stats));
    EXPECT_TRUE(BitIdentical(actual, expected));
    EXPECT_TRUE(StatsMatch(col_stats, row_stats));
  }

  Expr Var() const { return Expr::Var("x", table_->schema()); }

  std::shared_ptr<Table> table_;
};

TEST_F(ColumnarFilterTest, PredicateShapesMatchRowSemantics) {
  Expr x = Var();
  auto field = [&](const char* name) { return Expr::Must(Expr::Field(x, name)); };
  std::vector<Expr> predicates = {
      // Int comparisons, all six operators.
      Expr::Must(Expr::Binary(BinaryOp::kLt, field("i"),
                              Expr::Literal(Value::Int(500)))),
      Expr::Must(Expr::Binary(BinaryOp::kEq, field("i"),
                              Expr::Literal(Value::Int(1234)))),
      Expr::Must(Expr::Binary(BinaryOp::kGe, field("i"),
                              Expr::Literal(Value::Int(2990)))),
      // Mixed Int/Real comparison promotes through double, like the rows.
      Expr::Must(Expr::Binary(BinaryOp::kGt, field("r"), field("i"))),
      // Arithmetic with wrapping Int semantics.
      Expr::Must(Expr::Binary(
          BinaryOp::kEq,
          Expr::Must(Expr::Binary(BinaryOp::kMul, field("i"),
                                  Expr::Literal(Value::Int(3)))),
          Expr::Literal(Value::Int(90)))),
      // Bool column and logical connectives.
      Expr::And(field("b"),
                Expr::Must(Expr::Binary(BinaryOp::kLe, field("i"),
                                        Expr::Literal(Value::Int(100))))),
      Expr::Must(Expr::Binary(
          BinaryOp::kOr, Expr::Not(field("b")),
          Expr::Must(Expr::Binary(BinaryOp::kEq, field("s"),
                                  Expr::Literal(Value::String("lo")))))),
      // String equality and ordering.
      Expr::Must(Expr::Binary(BinaryOp::kNe, field("s"),
                              Expr::Literal(Value::String("hi")))),
      Expr::Must(Expr::Binary(BinaryOp::kLt, field("s"),
                              Expr::Literal(Value::String("lz")))),
      // Constant-foldable and empty/full selections.
      Expr::True(),
      Expr::False(),
      Expr::Must(Expr::Binary(BinaryOp::kLt, field("i"),
                              Expr::Literal(Value::Int(-1)))),
  };
  for (const Expr& pred : predicates) {
    SCOPED_TRACE(pred.ToString());
    ExpectFilterParity(pred);
  }
}

TEST_F(ColumnarFilterTest, SelectionOverSelectionStaysColumnar) {
  // The second filter consumes id-vector (non-dense) batches of the first.
  Expr x = Var();
  Expr inner_pred = Expr::Must(Expr::Binary(
      BinaryOp::kLt, Expr::Must(Expr::Field(x, "i")),
      Expr::Literal(Value::Int(2000))));
  Expr outer_pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, Expr::Must(Expr::Field(x, "s")),
      Expr::Literal(Value::String("lo"))));

  auto build = [&](bool columnar) {
    std::optional<ColumnPredicate> inner_c, outer_c;
    if (columnar) {
      inner_c = ColumnPredicate::Compile(inner_pred, "x", table_->schema());
      outer_c = ColumnPredicate::Compile(outer_pred, "x", table_->schema());
      EXPECT_TRUE(inner_c.has_value());
      EXPECT_TRUE(outer_c.has_value());
    }
    PhysicalOpPtr inner(new FilterOp(
        PhysicalOpPtr(new TableScanOp(table_, columnar)), "x", inner_pred,
        std::move(inner_c)));
    return PhysicalOpPtr(new FilterOp(std::move(inner), "x", outer_pred,
                                      std::move(outer_c)));
  };

  PhysicalOpPtr row_plan = build(false);
  PhysicalOpPtr col_plan = build(true);
  Executor reference(1);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> expected,
                            reference.RunPhysical(row_plan.get()));
  Executor executor(1);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> actual,
                            executor.RunPhysical(col_plan.get()));
  EXPECT_TRUE(BitIdentical(actual, expected));
  EXPECT_TRUE(StatsMatch(executor.stats(), reference.stats()));
}

TEST_F(ColumnarFilterTest, CompileRefusesWhatItCannotMirror) {
  Expr x = Var();
  Expr other = Expr::Var("y", table_->schema());
  // Foreign variable.
  EXPECT_FALSE(ColumnPredicate::Compile(
                   Expr::Must(Expr::Binary(
                       BinaryOp::kLt, Expr::Must(Expr::Field(other, "i")),
                       Expr::Literal(Value::Int(5)))),
                   "x", table_->schema())
                   .has_value());
  // Division (runtime error on zero cannot be reproduced columnar-ly).
  EXPECT_FALSE(ColumnPredicate::Compile(
                   Expr::Must(Expr::Binary(
                       BinaryOp::kEq,
                       Expr::Must(Expr::Binary(
                           BinaryOp::kDiv, Expr::Must(Expr::Field(x, "i")),
                           Expr::Literal(Value::Int(2)))),
                       Expr::Literal(Value::Int(3)))),
                   "x", table_->schema())
                   .has_value());
  // Unknown field.
  EXPECT_FALSE(Expr::Field(x, "nope").ok());
}

// ------------------------------------------------------- fast joins

class ColumnarJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        left_, Table::Create("L", Type::Tuple({{"k", Type::Int()},
                                               {"v", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        right_, Table::Create("R", Type::Tuple({{"j", Type::Int()},
                                                {"w", Type::Int()}})));
    for (int i = 0; i < 400; ++i) {
      TMDB_ASSERT_OK(left_->Insert(IntRow({"k", "v"}, {i % 60, i})));
      TMDB_ASSERT_OK(right_->Insert(IntRow({"j", "w"}, {i % 90, i})));
    }
  }

  PhysicalOpPtr MakeJoin(JoinMode mode, bool fast) const {
    Expr xv = Expr::Var("x", left_->schema());
    Expr yv = Expr::Var("y", right_->schema());
    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = right_->schema();
    spec.pred = Expr::True();
    spec.func = yv;  // identity G: nest the whole right row
    spec.label = "g";
    std::vector<Expr> lk = {Expr::Must(Expr::Field(xv, "k"))};
    std::vector<Expr> rk = {Expr::Must(Expr::Field(yv, "j"))};
    std::optional<FastKeySpec> fk;
    if (fast) {
      fk = ResolveFastKeys(lk, rk, "x", "y");
      EXPECT_TRUE(fk.has_value());
    }
    return PhysicalOpPtr(new HashJoinOp(
        PhysicalOpPtr(new TableScanOp(left_)),
        PhysicalOpPtr(new TableScanOp(right_)), std::move(spec),
        std::move(lk), std::move(rk), std::move(fk)));
  }

  std::shared_ptr<Table> left_;
  std::shared_ptr<Table> right_;
};

TEST_F(ColumnarJoinTest, AllModesFastPathParity) {
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kSemi, JoinMode::kAnti,
                        JoinMode::kLeftOuter, JoinMode::kNestJoin}) {
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE(JoinModeName(mode) + "/threads=" + std::to_string(threads));
      PhysicalOpPtr row_plan = MakeJoin(mode, false);
      PhysicalOpPtr fast_plan = MakeJoin(mode, true);
      Executor reference(threads);
      TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> expected,
                                reference.RunPhysical(row_plan.get()));
      Executor executor(threads);
      TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> actual,
                                executor.RunPhysical(fast_plan.get()));
      EXPECT_TRUE(BitIdentical(actual, expected));
      EXPECT_TRUE(StatsMatch(executor.stats(), reference.stats()));
    }
  }
}

TEST_F(ColumnarJoinTest, StringAndRealKeysAndCrossKindProbes) {
  // S(k: STRING) ⋈ and a REAL build side probed by INT keys — the Int/Real
  // cross-kind match must work through the double image, like Value::Hash.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto sl, Table::Create("SL", Type::Tuple({{"k", Type::String()},
                                                {"v", Type::Int()}})));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto sr, Table::Create("SR", Type::Tuple({{"j", Type::String()},
                                                {"w", Type::Int()}})));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto il, Table::Create("IL", Type::Tuple({{"k", Type::Int()},
                                                {"v", Type::Int()}})));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto rr, Table::Create("RR", Type::Tuple({{"j", Type::Real()},
                                                {"w", Type::Int()}})));
  for (int i = 0; i < 200; ++i) {
    TMDB_ASSERT_OK(sl->Insert(Value::Tuple(
        {"k", "v"},
        {Value::String("k" + std::to_string(i % 40)), Value::Int(i)})));
    TMDB_ASSERT_OK(sr->Insert(Value::Tuple(
        {"j", "w"},
        {Value::String("k" + std::to_string(i % 25)), Value::Int(i)})));
    TMDB_ASSERT_OK(il->Insert(IntRow({"k", "v"}, {i % 50, i})));
    TMDB_ASSERT_OK(rr->Insert(Value::Tuple(
        {"j", "w"}, {Value::Real(static_cast<double>(i % 30)),
                     Value::Int(i)})));
  }

  auto run_pair = [&](std::shared_ptr<Table> l, std::shared_ptr<Table> r) {
    Expr xv = Expr::Var("x", l->schema());
    Expr yv = Expr::Var("y", r->schema());
    std::vector<Expr> lk = {Expr::Must(Expr::Field(xv, "k"))};
    std::vector<Expr> rk = {Expr::Must(Expr::Field(yv, "j"))};
    std::optional<FastKeySpec> fk = ResolveFastKeys(lk, rk, "x", "y");
    EXPECT_TRUE(fk.has_value());
    JoinSpec spec;
    spec.mode = JoinMode::kInner;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = r->schema();
    spec.pred = Expr::True();
    std::vector<Value> baseline_rows;
    ExecStats baseline_stats;
    for (bool fast : {false, true}) {
      JoinSpec s2 = spec;
      HashJoinOp join(PhysicalOpPtr(new TableScanOp(l)),
                      PhysicalOpPtr(new TableScanOp(r)), std::move(s2), lk,
                      rk, fast ? fk : std::nullopt);
      Executor executor(1);
      TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> rows,
                                executor.RunPhysical(&join));
      if (!fast) {
        baseline_rows = std::move(rows);
        baseline_stats = executor.stats();
      } else {
        EXPECT_TRUE(BitIdentical(rows, baseline_rows));
        EXPECT_TRUE(StatsMatch(executor.stats(), baseline_stats));
      }
    }
  };
  run_pair(sl, sr);  // string keys
  run_pair(il, rr);  // Int probe keys against a Real build side
}

TEST_F(ColumnarJoinTest, BuildSideKindDeviationFallsBack) {
  // A REAL-typed build key that holds an Int value at runtime: the fast
  // build must abort and the row path take over — same rows either way.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto r, Table::Create("RD", Type::Tuple({{"j", Type::Real()},
                                               {"w", Type::Int()}})));
  TMDB_ASSERT_OK(r->Insert(Value::Tuple(
      {"j", "w"}, {Value::Real(1.0), Value::Int(10)})));
  TMDB_ASSERT_OK(r->Insert(Value::Tuple(
      {"j", "w"}, {Value::Int(2), Value::Int(20)})));  // deviating kind

  Expr xv = Expr::Var("x", left_->schema());
  Expr yv = Expr::Var("y", r->schema());
  std::vector<Expr> lk = {Expr::Must(Expr::Field(xv, "k"))};
  std::vector<Expr> rk = {Expr::Must(Expr::Field(yv, "j"))};
  std::optional<FastKeySpec> fk = ResolveFastKeys(lk, rk, "x", "y");
  ASSERT_TRUE(fk.has_value());

  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = r->schema();
  spec.pred = Expr::True();

  JoinSpec s1 = spec;
  HashJoinOp row_join(PhysicalOpPtr(new TableScanOp(left_)),
                      PhysicalOpPtr(new TableScanOp(r)), std::move(s1), lk,
                      rk, std::nullopt);
  JoinSpec s2 = spec;
  HashJoinOp fast_join(PhysicalOpPtr(new TableScanOp(left_)),
                       PhysicalOpPtr(new TableScanOp(r)), std::move(s2), lk,
                       rk, std::move(fk));
  Executor reference(1);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> expected,
                            reference.RunPhysical(&row_join));
  Executor executor(1);
  TMDB_ASSERT_OK_AND_ASSIGN(std::vector<Value> actual,
                            executor.RunPhysical(&fast_join));
  EXPECT_TRUE(BitIdentical(actual, expected));
  EXPECT_TRUE(StatsMatch(executor.stats(), reference.stats()));
  // Both Real(1.0) and the deviating Int(2) build rows join their 7 left
  // partners each (k = i % 60 over 400 rows → 7 hits per key in [0, 40)).
  EXPECT_EQ(actual.size(), 14u);
}

TEST(ResolveFastKeysTest, KindRules) {
  Type lt = Type::Tuple({{"i", Type::Int()},
                         {"r", Type::Real()},
                         {"s", Type::String()},
                         {"b", Type::Bool()}});
  Type rt = lt;
  Expr x = Expr::Var("x", lt);
  Expr y = Expr::Var("y", rt);
  auto key = [&](const Expr& base, const char* f) {
    return Expr::Must(Expr::Field(base, f));
  };

  auto resolve = [&](const char* lf, const char* rf) {
    return ResolveFastKeys({key(x, lf)}, {key(y, rf)}, "x", "y");
  };
  // Int = Int → kI64.
  auto ii = resolve("i", "i");
  ASSERT_TRUE(ii.has_value());
  EXPECT_EQ(ii->kind, FastKeySpec::Kind::kI64);
  // String = String → kStr.
  auto ss = resolve("s", "s");
  ASSERT_TRUE(ss.has_value());
  EXPECT_EQ(ss->kind, FastKeySpec::Kind::kStr);
  // Numeric with a Real build (right) side → kF64, either probe kind.
  auto ir = resolve("i", "r");
  ASSERT_TRUE(ir.has_value());
  EXPECT_EQ(ir->kind, FastKeySpec::Kind::kF64);
  // Real probe against an Int build side: the build table would be exact
  // Int, but Real probes need double semantics → refused.
  EXPECT_FALSE(resolve("r", "i").has_value());
  // Bools and cross-basic-kind pairs are refused.
  EXPECT_FALSE(resolve("b", "b").has_value());
  EXPECT_FALSE(resolve("s", "i").has_value());
  // Multi-key composites are refused (composite Value path handles them).
  EXPECT_FALSE(ResolveFastKeys({key(x, "i"), key(x, "s")},
                               {key(y, "i"), key(y, "s")}, "x", "y")
                   .has_value());
}

// ----------------------------------------------- arena + charge granularity

TEST(ArenaTest, ChargesBlocksThroughTheGuard) {
  ExecStats stats;
  QueryGuard guard;
  GuardLimits limits;
  limits.memory_budget_bytes = 256 << 10;
  guard.Reset(limits, &stats, nullptr);

  Arena arena;
  arena.Bind(&guard);
  const int64_t before = guard.memory_used();
  TMDB_ASSERT_OK_AND_ASSIGN(int64_t* p, arena.AllocateArray<int64_t>(100));
  for (int i = 0; i < 100; ++i) p[i] = i;
  EXPECT_GE(guard.memory_used() - before, 100 * 8);
  // Reset refunds everything.
  arena.Reset();
  EXPECT_EQ(guard.memory_used(), before);

  // A budget below one block: the very first allocation trips.
  GuardLimits small;
  small.memory_budget_bytes = 1 << 10;
  guard.Reset(small, &stats, nullptr);
  arena.Bind(&guard);
  auto blown = arena.AllocateArray<int64_t>(100);
  ASSERT_FALSE(blown.ok());
  EXPECT_EQ(blown.status().code(), StatusCode::kResourceExhausted);
  arena.Reset();
}

TEST(ChargeGranularityTest, TripsWithinOneGranuleOfTheLimit) {
  // Satellite regression: Charge() defers the *checkpoint*, never the
  // accounting. With budget B and granularity G, charging in tiny steps
  // must fail before B + G + step bytes have been accepted.
  ExecStats stats;
  QueryGuard guard;
  GuardLimits limits;
  const uint64_t kBudget = 128 << 10;
  limits.memory_budget_bytes = kBudget;
  guard.Reset(limits, &stats, nullptr);

  GuardReservation res;
  res.Reset(&guard);
  const uint64_t kStep = 64;
  uint64_t accepted = 0;
  Status tripped = Status::OK();
  for (int i = 0; i < 1 << 20; ++i) {
    tripped = res.Charge(kStep);
    if (!tripped.ok()) break;
    accepted += kStep;
  }
  ASSERT_FALSE(tripped.ok()) << "budget never tripped";
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_LE(accepted, kBudget + res.charge_granularity() + kStep);
  // memory_used stayed exact the whole time (accounting not deferred).
  EXPECT_GE(guard.memory_used(), static_cast<int64_t>(accepted));
  res.Release();
  EXPECT_EQ(guard.memory_used(), 0);
}

}  // namespace
}  // namespace tmdb
