// GuardReservation accounting: Add charges and checkpoints, Shrink refunds
// without unbinding (clamped so estimates can never drive the guard
// negative), Release returns everything exactly once. The spill path leans
// on this arithmetic — a build that partitions to disk refunds its charge
// via Shrink, and a phantom (unrefunded) charge would shrink every
// downstream operator's headroom.

#include <cstdint>

#include <gtest/gtest.h>

#include "exec/exec_context.h"
#include "exec/query_guard.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

class GuardReservationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GuardLimits limits;
    limits.memory_budget_bytes = 1 << 20;  // 1 MiB
    guard_.Reset(limits, &stats_, nullptr);
    baseline_ = guard_.memory_used();
  }

  /// Bytes charged to the guard beyond the post-Reset baseline.
  int64_t charged() const { return guard_.memory_used() - baseline_; }

  ExecStats stats_;
  QueryGuard guard_;
  int64_t baseline_ = 0;
};

TEST_F(GuardReservationTest, AddChargesAndHeldTracks) {
  GuardReservation res;
  res.Reset(&guard_);
  EXPECT_EQ(res.held(), 0u);

  TMDB_ASSERT_OK(res.Add(1000));
  EXPECT_EQ(res.held(), 1000u);
  EXPECT_EQ(charged(), 1000);

  TMDB_ASSERT_OK(res.Add(234));
  EXPECT_EQ(res.held(), 1234u);
  EXPECT_EQ(charged(), 1234);

  res.Release();
  EXPECT_EQ(res.held(), 0u);
  EXPECT_EQ(charged(), 0);
}

TEST_F(GuardReservationTest, ShrinkRefundsWithoutUnbinding) {
  GuardReservation res;
  res.Reset(&guard_);
  TMDB_ASSERT_OK(res.Add(4096));

  res.Shrink(1096);
  EXPECT_EQ(res.held(), 3000u);
  EXPECT_EQ(charged(), 3000);

  // Still bound: further Adds charge the same guard.
  TMDB_ASSERT_OK(res.Add(500));
  EXPECT_EQ(res.held(), 3500u);
  EXPECT_EQ(charged(), 3500);

  res.Release();
  EXPECT_EQ(charged(), 0);
}

TEST_F(GuardReservationTest, ShrinkClampsToBalance) {
  GuardReservation res;
  res.Reset(&guard_);
  TMDB_ASSERT_OK(res.Add(100));

  // A generous refund estimate must not push the guard below zero.
  res.Shrink(250);
  EXPECT_EQ(res.held(), 0u);
  EXPECT_EQ(charged(), 0);

  // And shrinking an empty reservation stays a no-op.
  res.Shrink(50);
  EXPECT_EQ(res.held(), 0u);
  EXPECT_EQ(charged(), 0);
}

TEST_F(GuardReservationTest, DoubleReleaseIsANoOp) {
  GuardReservation res;
  res.Reset(&guard_);
  TMDB_ASSERT_OK(res.Add(2048));
  res.Release();
  res.Release();
  EXPECT_EQ(charged(), 0);
}

TEST_F(GuardReservationTest, ResetReleasesHeldBalance) {
  GuardReservation res;
  res.Reset(&guard_);
  TMDB_ASSERT_OK(res.Add(512));
  EXPECT_EQ(charged(), 512);
  // Rebinding (re-Open) returns the old balance first.
  res.Reset(&guard_);
  EXPECT_EQ(res.held(), 0u);
  EXPECT_EQ(charged(), 0);
}

TEST_F(GuardReservationTest, AddTripsTheBudgetAtTheMaterialisationSite) {
  GuardReservation res;
  res.Reset(&guard_);
  Status s = res.Add(2u << 20);  // double the budget
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_TRUE(guard_.memory_over_budget());
  EXPECT_TRUE(guard_.last_trip_was_memory());

  // Shrinking the charge back below the budget clears the live condition —
  // the exact arithmetic the spill refund depends on — but the recorded
  // trip kind survives, so a spill decision made *after* the unwinding
  // freed the tripping allocation still classifies correctly.
  res.Shrink(2u << 20);
  EXPECT_FALSE(guard_.memory_over_budget());
  EXPECT_TRUE(guard_.last_trip_was_memory());
  TMDB_EXPECT_OK(guard_.Check());
}

TEST_F(GuardReservationTest, UnboundReservationIsInert) {
  GuardReservation res;  // never Reset to a guard
  TMDB_ASSERT_OK(res.Add(1u << 30));
  EXPECT_EQ(res.held(), 0u);
  res.Shrink(123);
  res.Release();
  EXPECT_EQ(charged(), 0);
}

TEST_F(GuardReservationTest, MemoryOverBudgetDistinguishesMaxRowsTrips) {
  // A guard with only a row budget reports kResourceExhausted without
  // memory_over_budget() — the signal spill eligibility keys on.
  GuardLimits limits;
  limits.max_rows = 1;
  ExecStats stats;
  QueryGuard guard;
  guard.Reset(limits, &stats, nullptr);
  stats.rows_emitted = 100;  // blow the row budget after the Reset snapshot
  Status s = guard.Check();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_FALSE(guard.memory_over_budget());
  EXPECT_FALSE(guard.last_trip_was_memory());
}

TEST_F(GuardReservationTest, MemoryCheckSuspensionOnlySilencesMemory) {
  GuardReservation res;
  res.Reset(&guard_);
  Status over = res.Add(2u << 20);
  ASSERT_EQ(over.code(), StatusCode::kResourceExhausted);

  {
    MemoryCheckSuspension suspend(&guard_);
    // Over budget, but the comparison is suspended: the write-out loop can
    // make progress.
    TMDB_EXPECT_OK(guard_.Check());
    // Cancellation still fires mid-spill.
    guard_.Cancel();
    Status s = guard_.Check();
    EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.ToString();
  }
}

TEST_F(GuardReservationTest, SuspensionOnNullGuardIsANoOp) {
  MemoryCheckSuspension suspend(nullptr);  // must not crash
}

TEST_F(GuardReservationTest, ClearTripStateDropsResidualsBetweenRuns) {
  // A reused executor's guard must not carry query N's trip record or a
  // late cancel into query N+1. Trip the memory budget, then clear.
  GuardReservation res;
  res.Reset(&guard_);
  Status over = res.Add(2u << 20);
  ASSERT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(guard_.last_trip_was_memory());
  res.Release();

  guard_.Cancel();  // a cancel that raced the end of the run
  guard_.ClearTripState();
  EXPECT_FALSE(guard_.last_trip_was_memory());

  // Without rearming, the cleared guard checkpoints clean: no stale
  // cancellation, no stale memory-trip record.
  TMDB_EXPECT_OK(guard_.Check());
}

}  // namespace
}  // namespace tmdb
