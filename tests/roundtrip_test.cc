// Round-trip properties of the source syntax:
//  - every storable value renders via ValueToLiteral to text that parses
//    and evaluates back to an equal value (random complex objects);
//  - SELECT-clause nesting with several subqueries in one projection;
//  - EXPLAIN text is stable enough to pin the key sections.

#include <gtest/gtest.h>

#include "base/random.h"
#include "core/database.h"
#include "core/dump.h"
#include "expr/eval.h"
#include "parser/parser.h"
#include "parser/statement.h"
#include "sema/binder.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::RowsEqual;

/// Generates a random storable value (no NULLs, no lists, non-empty
/// tuples) of bounded depth.
Value RandomValue(Random* rng, int depth) {
  const uint64_t pick = rng->Uniform(depth > 0 ? 6 : 4);
  switch (pick) {
    case 0:
      return Value::Bool(rng->Bernoulli(0.5));
    case 1:
      return Value::Int(rng->UniformInt(-1000, 1000));
    case 2:
      // Round to avoid printing precision issues in the literal syntax.
      return Value::Real(static_cast<double>(rng->UniformInt(-100, 100)) /
                         4.0);
    case 3: {
      std::string s;
      for (size_t i = rng->Uniform(6); i > 0; --i) {
        s += static_cast<char>('a' + rng->Uniform(26));
      }
      if (rng->Bernoulli(0.2)) s += "\"quoted\\";
      return Value::String(std::move(s));
    }
    case 4: {
      // TM sets are homogeneous: fill with one element shape (ints, or
      // fixed-field int tuples).
      std::vector<Value> elems;
      const bool tuple_elems = rng->Bernoulli(0.4);
      for (size_t i = rng->Uniform(4); i > 0; --i) {
        if (tuple_elems) {
          elems.push_back(Value::Tuple(
              {"u", "w"}, {Value::Int(rng->UniformInt(0, 9)),
                           Value::Int(rng->UniformInt(0, 9))}));
        } else {
          elems.push_back(Value::Int(rng->UniformInt(-50, 50)));
        }
      }
      return Value::Set(std::move(elems));
    }
    default: {
      std::vector<std::string> names;
      std::vector<Value> values;
      const size_t n = 1 + rng->Uniform(3);
      for (size_t i = 0; i < n; ++i) {
        names.push_back(std::string(1, static_cast<char>('p' + i)));
        values.push_back(RandomValue(rng, depth - 1));
      }
      return Value::Tuple(std::move(names), std::move(values));
    }
  }
}

class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, ValueLiteralsParseAndEvaluateBack) {
  Random rng(GetParam());
  Catalog empty_catalog;
  Binder binder(&empty_catalog);
  Environment env;
  for (int i = 0; i < 100; ++i) {
    const Value original = RandomValue(&rng, 3);
    auto literal = ValueToLiteral(original);
    ASSERT_TRUE(literal.ok()) << original.ToString();
    // Literals are written in *data* position (VALUES), where single-field
    // tuples unambiguously parse as tuples — the context DumpScript emits
    // them in.
    TMDB_ASSERT_OK_AND_ASSIGN(
        StatementPtr statement,
        ParseStatement("INSERT INTO T VALUES " + *literal));
    ASSERT_EQ(statement->values.size(), 1u) << *literal;
    TMDB_ASSERT_OK_AND_ASSIGN(Expr expr,
                              binder.BindExpression(*statement->values[0]));
    TMDB_ASSERT_OK_AND_ASSIGN(Value back, EvalExpr(expr, env));
    EXPECT_TRUE(back.Equals(original))
        << "literal " << *literal << " evaluated to " << back.ToString()
        << ", expected " << original.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Values(11u, 22u));

// Caveat pinned on purpose: a parenthesised single-field tuple whose value
// is an equality-comparable expression parses as a comparison in
// expression position — the documented grammar ambiguity resolution.
TEST(RoundTripCaveatTest, SingleFieldTupleOfComparableParsesAsComparison) {
  Catalog empty_catalog;
  Binder binder(&empty_catalog);
  TMDB_ASSERT_OK_AND_ASSIGN(AstPtr ast, ParseQuery("(a = 1)"));
  EXPECT_EQ(ast->kind, AstKind::kBinary);  // comparison, unbound 'a'
  EXPECT_FALSE(binder.BindExpression(*ast).ok());
}

TEST(SelectClauseMultiSubqueryTest, TwoSubqueriesInOneProjection) {
  Database db;
  TMDB_ASSERT_OK(db.ExecuteScript(
                     "CREATE TABLE X (b : INT, c : INT);"
                     "CREATE TABLE Y (a : INT, b : INT);"
                     "INSERT INTO X VALUES (b = 1, c = 10), (b = 2, c = 20);"
                     "INSERT INTO Y VALUES (a = 5, b = 1), (a = 6, b = 1), "
                     "(a = 7, b = 9)")
                   .status());
  const std::string query =
      "SELECT (c = x.c, "
      "  matches = SELECT y.a FROM Y y WHERE x.b = y.b, "
      "  others  = SELECT y2.a FROM Y y2 WHERE NOT (x.b = y2.b)) "
      "FROM X x";
  RunOptions naive;
  naive.strategy = Strategy::kNaive;
  RunOptions nest;
  nest.strategy = Strategy::kNestJoin;
  TMDB_ASSERT_OK_AND_ASSIGN(auto a, db.Run(query, naive));
  TMDB_ASSERT_OK_AND_ASSIGN(auto b, db.Run(query, nest));
  EXPECT_TRUE(RowsEqual(a.rows, b.rows));
  // Both subqueries became nest joins.
  TMDB_ASSERT_OK_AND_ASSIGN(auto plan, db.Plan(query, Strategy::kNestJoin));
  const std::string rendered = plan->ToString();
  size_t first = rendered.find("NestJoin");
  ASSERT_NE(first, std::string::npos) << rendered;
  EXPECT_NE(rendered.find("NestJoin", first + 1), std::string::npos)
      << rendered;
}

TEST(ExplainSnapshotTest, CountQuerySections) {
  Database db;
  TMDB_ASSERT_OK(db.ExecuteScript(
                     "CREATE TABLE R (a : INT, b : INT, c : INT);"
                     "CREATE TABLE S (c : INT, d : INT)")
                   .status());
  TMDB_ASSERT_OK_AND_ASSIGN(
      std::string text,
      db.Explain("SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
                 "WHERE x.c = y.c)"));
  // The key structural lines of the rewritten plan, pinned.
  EXPECT_NE(text.find("NestJoin[x,y : (x.c = y.c), G = y.d; _grp1]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("(x.b = count(x._grp1))"), std::string::npos) << text;
  EXPECT_NE(text.find("aggregate between blocks"), std::string::npos) << text;
  EXPECT_NE(text.find("HashJoin<NestJoin>"), std::string::npos) << text;
}

}  // namespace
}  // namespace tmdb
