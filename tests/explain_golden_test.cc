// Golden-file EXPLAIN tests: the full EXPLAIN text — naive plan, strategy
// costing table (strategy = auto), rewritten plan, Table 2 decisions,
// physical plan — is compared byte for byte against checked-in files under
// tests/golden/. Everything that feeds the text is deterministic: the
// workload generators are seeded, the cost model samples with a fixed
// seed, and the costing table formats through fixed-width printf.
//
// To regenerate after an intentional change:
//   TMDB_UPDATE_GOLDENS=1 ./build/tests/explain_golden_test

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"
#include "translate/strategies.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

namespace fs = std::filesystem;

fs::path GoldenPath(const std::string& name) {
  return fs::path(TMDB_GOLDEN_DIR) / (name + ".txt");
}

/// Compares `actual` against the named golden file; with
/// TMDB_UPDATE_GOLDENS set, rewrites the file instead and passes.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const fs::path path = GoldenPath(name);
  if (std::getenv("TMDB_UPDATE_GOLDENS") != nullptr) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << path.string();
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path.string()
                         << " — run with TMDB_UPDATE_GOLDENS=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "EXPLAIN output drifted from " << path.string()
      << "; if intentional, regenerate with TMDB_UPDATE_GOLDENS=1";
}

constexpr const char* kCorrelated =
    "SELECT (a = o.a, n = count(SELECT i.v FROM I i WHERE o.k = i.k)) "
    "FROM O o";

void LoadCorrelated(Database* db, size_t num_outer, int64_t scale) {
  CorrelatedConfig config;
  config.num_outer = num_outer;
  config.num_inner = 60;
  config.correlation_scale = scale;
  TMDB_ASSERT_OK(LoadCorrelatedTables(db, config));
}

TEST(ExplainGoldenTest, AutoHighHitRatioChoosesMemoizedNaive) {
  // 10 distinct correlation values over 10000 rows: the costing table must
  // show naive starred with an est. hit ratio near 1.
  Database db;
  LoadCorrelated(&db, 10000, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(std::string out,
                            db.Explain(kCorrelated, Strategy::kAuto));
  EXPECT_NE(out.find("== strategy costing (auto) =="), std::string::npos);
  EXPECT_NE(out.find("* naive"), std::string::npos);
  EXPECT_NE(out.find("rewritten (auto -> naive)"), std::string::npos);
  ExpectMatchesGolden("explain_auto_high_hit", out);
}

TEST(ExplainGoldenTest, AutoLowHitRatioChoosesUnnested) {
  // Every outer row has its own correlation value: an unnested strategy
  // must be starred and the rewritten header must name it.
  Database db;
  LoadCorrelated(&db, 2000, 2000);
  TMDB_ASSERT_OK_AND_ASSIGN(std::string out,
                            db.Explain(kCorrelated, Strategy::kAuto));
  EXPECT_NE(out.find("== strategy costing (auto) =="), std::string::npos);
  EXPECT_EQ(out.find("* naive"), std::string::npos);
  EXPECT_EQ(out.find("rewritten (auto -> naive)"), std::string::npos);
  ExpectMatchesGolden("explain_auto_low_hit", out);
}

TEST(ExplainGoldenTest, AutoCountBugQuery) {
  // The paper's COUNT-bug query through the auto path: the chosen rewrite
  // must be one of the COUNT-bug-safe strategies (Kim is not a candidate)
  // and the Table 2 decisions section must survive unchanged.
  Database db;
  CountBugConfig config;
  config.num_r = 100;
  config.num_s = 500;
  config.match_fraction = 0.5;
  config.domain_scale = 64;
  TMDB_ASSERT_OK(LoadCountBugTables(&db, config));
  TMDB_ASSERT_OK_AND_ASSIGN(
      std::string out,
      db.Explain("SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
                 "WHERE x.c = y.c)",
                 Strategy::kAuto));
  EXPECT_EQ(out.find("kim"), std::string::npos)
      << "Kim's algorithm must never appear as a costed candidate";
  ExpectMatchesGolden("explain_auto_count_bug", out);
}

TEST(ExplainGoldenTest, AutoSubplanFreeQueryIsUncosted) {
  Database db;
  LoadCorrelated(&db, 100, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(
      std::string out,
      db.Explain("SELECT o.a FROM O o WHERE o.k = 3", Strategy::kAuto));
  EXPECT_NE(out.find("not costed"), std::string::npos);
  ExpectMatchesGolden("explain_auto_no_subquery", out);
}

TEST(ExplainGoldenTest, ForcedStrategyFormatUnchanged) {
  // Regression pin for the pre-auto EXPLAIN shape: a forced strategy must
  // render without any costing section.
  Database db;
  LoadCorrelated(&db, 100, 10);
  TMDB_ASSERT_OK_AND_ASSIGN(std::string out,
                            db.Explain(kCorrelated, Strategy::kNestJoin));
  EXPECT_EQ(out.find("strategy costing"), std::string::npos);
  ExpectMatchesGolden("explain_forced_nestjoin", out);
}

}  // namespace
}  // namespace tmdb
