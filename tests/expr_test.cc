#include "expr/expr.h"

#include <gtest/gtest.h>

#include "expr/eval.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntSet;

Expr IntLit(int64_t v) { return Expr::Literal(Value::Int(v)); }

TEST(ExprTest, LiteralTypes) {
  EXPECT_TRUE(IntLit(1).type().is_int());
  EXPECT_TRUE(Expr::Literal(Value::Real(1.0)).type().is_real());
  EXPECT_TRUE(Expr::True().type().is_bool());
  EXPECT_TRUE(Expr::Literal(IntSet({1})).type().is_set());
}

TEST(ExprTest, BinaryTypeRules) {
  // arithmetic
  TMDB_ASSERT_OK_AND_ASSIGN(Expr add,
                            Expr::Binary(BinaryOp::kAdd, IntLit(1), IntLit(2)));
  EXPECT_TRUE(add.type().is_int());
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr addr, Expr::Binary(BinaryOp::kAdd, IntLit(1),
                              Expr::Literal(Value::Real(2.0))));
  EXPECT_TRUE(addr.type().is_real());
  EXPECT_FALSE(Expr::Binary(BinaryOp::kAdd, IntLit(1), Expr::True()).ok());
  // comparison
  TMDB_ASSERT_OK_AND_ASSIGN(Expr lt,
                            Expr::Binary(BinaryOp::kLt, IntLit(1), IntLit(2)));
  EXPECT_TRUE(lt.type().is_bool());
  EXPECT_FALSE(Expr::Binary(BinaryOp::kLt, Expr::True(), IntLit(1)).ok());
  // membership
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr in, Expr::Binary(BinaryOp::kIn, IntLit(1),
                            Expr::Literal(IntSet({1, 2}))));
  EXPECT_TRUE(in.type().is_bool());
  EXPECT_FALSE(Expr::Binary(BinaryOp::kIn, IntLit(1), IntLit(2)).ok());
  // set algebra
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr uni, Expr::Binary(BinaryOp::kUnion, Expr::Literal(IntSet({1})),
                             Expr::Literal(IntSet({2}))));
  EXPECT_TRUE(uni.type().is_set());
  EXPECT_FALSE(
      Expr::Binary(BinaryOp::kSubsetEq, IntLit(1), IntLit(2)).ok());
}

TEST(ExprTest, VarAndFieldAccess) {
  Type row = Type::Tuple({{"a", Type::Int()}, {"s", Type::Set(Type::Int())}});
  Expr x = Expr::Var("x", row);
  TMDB_ASSERT_OK_AND_ASSIGN(Expr xa, Expr::Field(x, "a"));
  EXPECT_TRUE(xa.type().is_int());
  EXPECT_EQ(xa.ToString(), "x.a");
  EXPECT_FALSE(Expr::Field(x, "nope").ok());
  EXPECT_FALSE(Expr::Field(IntLit(1), "a").ok());
}

TEST(ExprTest, FieldOfTupleCtorCollapses) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr tuple, Expr::MakeTuple({"a", "b"}, {IntLit(1), IntLit(2)}));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr b, Expr::Field(tuple, "b"));
  EXPECT_TRUE(b.is_literal());
  EXPECT_EQ(b.literal_value().AsInt(), 2);
}

TEST(ExprTest, QuantifierAndAggregateTyping) {
  Expr set = Expr::Literal(IntSet({1, 2, 3}));
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr pred, Expr::Binary(BinaryOp::kGt, Expr::Var("v", Type::Int()),
                              IntLit(1)));
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr q, Expr::Quantifier(QuantKind::kExists, "v", set, pred));
  EXPECT_TRUE(q.type().is_bool());
  EXPECT_FALSE(Expr::Quantifier(QuantKind::kExists, "v", IntLit(1),
                                Expr::True())
                   .ok());

  TMDB_ASSERT_OK_AND_ASSIGN(Expr cnt, Expr::Aggregate(AggFunc::kCount, set));
  EXPECT_TRUE(cnt.type().is_int());
  TMDB_ASSERT_OK_AND_ASSIGN(Expr avg, Expr::Aggregate(AggFunc::kAvg, set));
  EXPECT_TRUE(avg.type().is_real());
  EXPECT_FALSE(Expr::Aggregate(AggFunc::kSum, IntLit(1)).ok());
}

TEST(ExprTest, FreeVarsAndShadowing) {
  Type row = Type::Tuple({{"a", Type::Set(Type::Int())}});
  Expr x = Expr::Var("x", row);
  TMDB_ASSERT_OK_AND_ASSIGN(Expr xa, Expr::Field(x, "a"));
  // EXISTS x IN x.a (x = 1): the quantifier variable shadows the outer x
  // inside the body, but the collection sees the outer x.
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr body, Expr::Binary(BinaryOp::kEq, Expr::Var("x", Type::Int()),
                              IntLit(1)));
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr q, Expr::Quantifier(QuantKind::kExists, "x", xa, body));
  std::set<std::string> free = q.FreeVars();
  EXPECT_EQ(free, std::set<std::string>{"x"});  // from the collection only
}

TEST(ExprTest, SubstituteIsCaptureAvoiding) {
  // Substituting x inside EXISTS x IN S (x > 0) must not touch the body.
  Expr set = Expr::Literal(IntSet({1}));
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr body, Expr::Binary(BinaryOp::kGt, Expr::Var("x", Type::Int()),
                              IntLit(0)));
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr q, Expr::Quantifier(QuantKind::kExists, "x", set, body));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr substituted, q.Substitute("x", IntLit(9)));
  EXPECT_TRUE(substituted.Equals(q));
}

TEST(ExprTest, StructuralEquality) {
  TMDB_ASSERT_OK_AND_ASSIGN(Expr a,
                            Expr::Binary(BinaryOp::kAdd, IntLit(1), IntLit(2)));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr b,
                            Expr::Binary(BinaryOp::kAdd, IntLit(1), IntLit(2)));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr c,
                            Expr::Binary(BinaryOp::kSub, IntLit(1), IntLit(2)));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ExprTest, AndSimplification) {
  Expr t = Expr::True();
  TMDB_ASSERT_OK_AND_ASSIGN(Expr cmp,
                            Expr::Binary(BinaryOp::kLt, IntLit(1), IntLit(2)));
  EXPECT_TRUE(Expr::And(t, cmp).Equals(cmp));
  EXPECT_TRUE(Expr::And(cmp, t).Equals(cmp));
  EXPECT_TRUE(Expr::AndAll({}).Equals(Expr::True()));
}

// ----------------------------------------------------------------- eval

class EvalTest : public ::testing::Test {
 protected:
  Result<Value> Eval(const Expr& e) { return EvalExpr(e, env_); }
  Environment env_;
};

TEST_F(EvalTest, ArithmeticAndComparison) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr e, Expr::Binary(BinaryOp::kMul, IntLit(6), IntLit(7)));
  TMDB_ASSERT_OK_AND_ASSIGN(Value v, Eval(e));
  EXPECT_EQ(v.AsInt(), 42);

  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr cmp, Expr::Binary(BinaryOp::kLe, IntLit(3), IntLit(3)));
  TMDB_ASSERT_OK_AND_ASSIGN(Value b, Eval(cmp));
  EXPECT_TRUE(b.AsBool());
}

TEST_F(EvalTest, ShortCircuitAndOr) {
  // (false AND (1/0 = 1)) must not evaluate the division.
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr div, Expr::Binary(BinaryOp::kDiv, IntLit(1), IntLit(0)));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr bad,
                            Expr::Binary(BinaryOp::kEq, div, IntLit(1)));
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr guarded, Expr::Binary(BinaryOp::kAnd, Expr::False(), bad));
  TMDB_ASSERT_OK_AND_ASSIGN(Value v, Eval(guarded));
  EXPECT_FALSE(v.AsBool());
  // Without the guard the error surfaces.
  EXPECT_FALSE(Eval(bad).ok());
  // OR short-circuits symmetrically.
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr guarded_or, Expr::Binary(BinaryOp::kOr, Expr::True(), bad));
  TMDB_ASSERT_OK_AND_ASSIGN(Value v2, Eval(guarded_or));
  EXPECT_TRUE(v2.AsBool());
}

TEST_F(EvalTest, EnvironmentScoping) {
  env_.Bind("x", Value::Int(10));
  Environment inner(&env_);
  inner.Bind("x", Value::Int(20));
  TMDB_ASSERT_OK_AND_ASSIGN(Value outer,
                            EvalExpr(Expr::Var("x", Type::Int()), env_));
  EXPECT_EQ(outer.AsInt(), 10);
  TMDB_ASSERT_OK_AND_ASSIGN(Value shadowed,
                            EvalExpr(Expr::Var("x", Type::Int()), inner));
  EXPECT_EQ(shadowed.AsInt(), 20);
  EXPECT_FALSE(EvalExpr(Expr::Var("unbound", Type::Int()), env_).ok());
}

TEST_F(EvalTest, Quantifiers) {
  Expr set = Expr::Literal(IntSet({1, 2, 3}));
  Expr v = Expr::Var("v", Type::Int());
  TMDB_ASSERT_OK_AND_ASSIGN(Expr gt2, Expr::Binary(BinaryOp::kGt, v, IntLit(2)));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr gt0, Expr::Binary(BinaryOp::kGt, v, IntLit(0)));

  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr ex, Expr::Quantifier(QuantKind::kExists, "v", set, gt2));
  TMDB_ASSERT_OK_AND_ASSIGN(Value b1, Eval(ex));
  EXPECT_TRUE(b1.AsBool());

  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr fa, Expr::Quantifier(QuantKind::kForAll, "v", set, gt2));
  TMDB_ASSERT_OK_AND_ASSIGN(Value b2, Eval(fa));
  EXPECT_FALSE(b2.AsBool());

  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr fa0, Expr::Quantifier(QuantKind::kForAll, "v", set, gt0));
  TMDB_ASSERT_OK_AND_ASSIGN(Value b3, Eval(fa0));
  EXPECT_TRUE(b3.AsBool());

  // Vacuous truth / falsity over ∅.
  Expr empty = Expr::Literal(Value::EmptySet());
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr ex_e, Expr::Quantifier(QuantKind::kExists, "v", empty,
                                  Expr::True()));
  TMDB_ASSERT_OK_AND_ASSIGN(Value b4, Eval(ex_e));
  EXPECT_FALSE(b4.AsBool());
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr fa_e, Expr::Quantifier(QuantKind::kForAll, "v", empty,
                                  Expr::False()));
  TMDB_ASSERT_OK_AND_ASSIGN(Value b5, Eval(fa_e));
  EXPECT_TRUE(b5.AsBool());
}

TEST_F(EvalTest, TupleAndSetConstructors) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr tuple, Expr::MakeTuple({"a", "b"}, {IntLit(1), IntLit(2)}));
  TMDB_ASSERT_OK_AND_ASSIGN(Value t, Eval(tuple));
  EXPECT_EQ(t.TupleSize(), 2u);

  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr set, Expr::MakeSet({IntLit(2), IntLit(1), IntLit(2)}));
  TMDB_ASSERT_OK_AND_ASSIGN(Value s, Eval(set));
  EXPECT_TRUE(s.Equals(IntSet({1, 2})));  // constructor dedupes
}

TEST_F(EvalTest, UnnestOperator) {
  Expr sets = Expr::Literal(Value::Set({IntSet({1, 2}), IntSet({3})}));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr unnest, Expr::Unary(UnaryOp::kUnnest, sets));
  TMDB_ASSERT_OK_AND_ASSIGN(Value v, Eval(unnest));
  EXPECT_TRUE(v.Equals(IntSet({1, 2, 3})));
}

TEST_F(EvalTest, SubplanWithoutEvaluatorErrors) {
  // An expression containing a subplan needs the executor; the plain
  // evaluator reports Unsupported instead of crashing.
  class FakeSubplan : public SubplanBase {
   public:
    std::string ToString() const override { return "fake"; }
    const std::set<std::string>& free_vars() const override { return free_; }

   private:
    std::set<std::string> free_;
  };
  Expr subplan = Expr::Subplan(std::make_shared<FakeSubplan>(),
                               Type::Set(Type::Int()));
  auto result = EvalExpr(subplan, env_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(EvalTest, EvalPredicateRejectsNonBool) {
  EXPECT_FALSE(EvalPredicate(IntLit(1), env_).ok());
  TMDB_ASSERT_OK_AND_ASSIGN(bool b, EvalPredicate(Expr::True(), env_));
  EXPECT_TRUE(b);
}

}  // namespace
}  // namespace tmdb
