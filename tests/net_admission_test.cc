// Admission controller tests: weighted-share thread grants, memory
// slicing, bounded-queue rejection, deadline rejection, release/wake
// ordering, and shutdown draining.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/admission.h"
#include "net/wire.h"

namespace tmdb {
namespace {

TEST(AdmissionTest, LoneQueryIsGrantedTheWholeSchedulerPool) {
  AdmissionConfig config;
  config.total_memory_bytes = 64ull << 20;
  config.total_threads = 8;
  config.max_concurrent = 4;
  AdmissionController controller(config);

  // Threads are weighted shares, not fixed slices: with nothing else
  // running, a weight-1 query gets the entire pool width. Memory stays an
  // equal slice of the global budget per concurrency slot.
  Result<AdmissionGrant> grant = controller.Admit(0);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->memory_bytes, (64ull << 20) / 4);
  EXPECT_EQ(grant->threads, 8);
  EXPECT_EQ(grant->active, 1);
  EXPECT_EQ(controller.active(), 1);
  controller.Release();
  EXPECT_EQ(controller.active(), 0);
}

TEST(AdmissionTest, ThreadGrantsAreWeightedShares) {
  AdmissionConfig config;
  config.total_threads = 8;
  config.max_concurrent = 8;
  AdmissionController controller(config);

  // First query, weight 4: alone → the whole pool.
  Result<AdmissionGrant> first = controller.Admit(0, /*weight=*/4);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->threads, 8);

  // Second query, weight 4: 8 × 4 / (4 + 4) = 4.
  Result<AdmissionGrant> second = controller.Admit(0, /*weight=*/4);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->threads, 4);

  // Third query, weight 8: 8 × 8 / 16 = 4. Existing grants are caps on a
  // shared work-stealing pool, not reservations, so the sum of grants may
  // exceed the pool width — stealing absorbs the oversubscription.
  Result<AdmissionGrant> third = controller.Admit(0, /*weight=*/8);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->threads, 4);

  // A light query under heavy load still gets at least one thread:
  // 8 × 1 / 17 = 0 → clamped to 1.
  Result<AdmissionGrant> light = controller.Admit(0, /*weight=*/1);
  ASSERT_TRUE(light.ok());
  EXPECT_EQ(light->threads, 1);

  // Releases retire their weight; the next admit sees the smaller load.
  controller.Release(/*weight=*/1);
  controller.Release(/*weight=*/8);
  controller.Release(/*weight=*/4);
  Result<AdmissionGrant> after = controller.Admit(0, /*weight=*/4);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->threads, 4);  // 8 × 4 / (4 + 4)
  controller.Release(/*weight=*/4);
  controller.Release(/*weight=*/4);
  EXPECT_EQ(controller.active(), 0);
}

TEST(AdmissionTest, NonPositiveWeightIsClampedToOne) {
  AdmissionConfig config;
  config.total_threads = 4;
  config.max_concurrent = 4;
  AdmissionController controller(config);
  Result<AdmissionGrant> grant = controller.Admit(0, /*weight=*/0);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->threads, 4);  // treated as weight 1, alone → whole pool
  controller.Release(/*weight=*/0);
  EXPECT_EQ(controller.active(), 0);
}

TEST(AdmissionTest, ZeroMemoryBudgetMeansUnlimitedGrants) {
  AdmissionConfig config;
  config.total_memory_bytes = 0;
  config.total_threads = 1;
  config.max_concurrent = 4;
  AdmissionController controller(config);
  Result<AdmissionGrant> grant = controller.Admit(0);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->memory_bytes, 0u);
  EXPECT_EQ(grant->threads, 1);  // never below 1
  controller.Release();
}

TEST(AdmissionTest, RejectsImmediatelyWhenQueueIsFull) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 0;  // no waiting at all
  AdmissionController controller(config);

  ASSERT_TRUE(controller.Admit(0).ok());
  Result<AdmissionGrant> second = controller.Admit(1000);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find(kRejectedMessagePrefix),
            std::string::npos);
  EXPECT_EQ(controller.rejected_queue_full(), 1u);
  controller.Release();
}

TEST(AdmissionTest, QueuedRequestTimesOutWithTypedRejection) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 4;
  AdmissionController controller(config);

  ASSERT_TRUE(controller.Admit(0).ok());
  Result<AdmissionGrant> waited = controller.Admit(20);
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(waited.status().message().find(kRejectedMessagePrefix),
            std::string::npos);
  EXPECT_EQ(controller.rejected_timeout(), 1u);
  controller.Release();
}

TEST(AdmissionTest, ReleaseWakesAQueuedWaiter) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 4;
  AdmissionController controller(config);

  ASSERT_TRUE(controller.Admit(0).ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Result<AdmissionGrant> grant = controller.Admit(10000);
    admitted.store(grant.ok());
    if (grant.ok()) controller.Release();
  });
  // Give the waiter time to queue, then free the slot.
  while (controller.queued() == 0) std::this_thread::yield();
  controller.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(controller.admitted_total(), 2u);
  EXPECT_EQ(controller.active(), 0);
}

TEST(AdmissionTest, ShutdownDrainsQueuedWaitersWithCancelled) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 8;
  AdmissionController controller(config);

  ASSERT_TRUE(controller.Admit(0).ok());
  std::vector<std::thread> waiters;
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      Result<AdmissionGrant> grant = controller.Admit(10000);
      if (!grant.ok() && grant.status().code() == StatusCode::kCancelled) {
        cancelled.fetch_add(1);
      }
    });
  }
  while (controller.queued() < 4) std::this_thread::yield();
  controller.Shutdown();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(cancelled.load(), 4);
  // After shutdown every Admit fails fast.
  EXPECT_EQ(controller.Admit(0).status().code(), StatusCode::kCancelled);
}

TEST(AdmissionTest, ConcurrencyNeverExceedsTheCap) {
  AdmissionConfig config;
  config.max_concurrent = 3;
  config.max_queue_depth = 64;
  AdmissionController controller(config);

  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<int> served{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 16; ++i) {
    workers.emplace_back([&] {
      Result<AdmissionGrant> grant = controller.Admit(10000);
      if (!grant.ok()) return;
      const int now = running.fetch_add(1) + 1;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1);
      served.fetch_add(1);
      controller.Release();
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(served.load(), 16);
  EXPECT_LE(peak.load(), 3);
  EXPECT_EQ(controller.active(), 0);
  EXPECT_EQ(controller.queued(), 0);
}

}  // namespace
}  // namespace tmdb
