#ifndef TMDB_TESTS_TEST_UTIL_H_
#define TMDB_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/result.h"
#include "base/status.h"
#include "catalog/catalog.h"
#include "values/value.h"

namespace tmdb {

/// gtest helpers for Status/Result.
#define TMDB_ASSERT_OK(expr)                                 \
  do {                                                       \
    const ::tmdb::Status _s = (expr);                        \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                   \
  } while (false)

#define TMDB_EXPECT_OK(expr)                                 \
  do {                                                       \
    const ::tmdb::Status _s = (expr);                        \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                   \
  } while (false)

/// Unwraps a Result<T> in a test, failing loudly on error.
#define TMDB_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                \
  TMDB_ASSERT_OK_AND_ASSIGN_IMPL_(                           \
      TMDB_TEST_CONCAT_(_tmdb_test_result_, __LINE__), lhs, rexpr)

#define TMDB_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, rexpr)     \
  auto tmp = (rexpr);                                        \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();          \
  lhs = std::move(tmp).value()

#define TMDB_TEST_CONCAT_(a, b) TMDB_TEST_CONCAT_2_(a, b)
#define TMDB_TEST_CONCAT_2_(a, b) a##b

namespace testutil {

/// Builds a flat tuple value ⟨names[i] = ints[i]⟩ of INT attributes.
inline Value IntRow(const std::vector<std::string>& names,
                    const std::vector<int64_t>& ints) {
  std::vector<Value> values;
  values.reserve(ints.size());
  for (int64_t v : ints) values.push_back(Value::Int(v));
  return Value::Tuple(names, std::move(values));
}

/// Builds a set of INT atoms.
inline Value IntSet(const std::vector<int64_t>& ints) {
  std::vector<Value> values;
  values.reserve(ints.size());
  for (int64_t v : ints) values.push_back(Value::Int(v));
  return Value::Set(std::move(values));
}

/// Sorts a row vector into canonical order for order-insensitive equality.
inline std::vector<Value> Canonical(std::vector<Value> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return rows;
}

/// Order-insensitive row-set equality with a readable failure message.
inline ::testing::AssertionResult RowsEqual(std::vector<Value> actual,
                                            std::vector<Value> expected) {
  actual = Canonical(std::move(actual));
  expected = Canonical(std::move(expected));
  if (actual.size() == expected.size()) {
    bool all = true;
    for (size_t i = 0; i < actual.size(); ++i) {
      if (!actual[i].Equals(expected[i])) {
        all = false;
        break;
      }
    }
    if (all) return ::testing::AssertionSuccess();
  }
  auto render = [](const std::vector<Value>& rows) {
    std::string out = "{\n";
    for (const Value& r : rows) out += "  " + r.ToString() + "\n";
    return out + "}";
  };
  return ::testing::AssertionFailure()
         << "row sets differ.\nactual = " << render(actual)
         << "\nexpected = " << render(expected);
}

}  // namespace testutil
}  // namespace tmdb

#endif  // TMDB_TESTS_TEST_UTIL_H_
