// Correlation signatures and the per-query subplan memoization cache:
//  - signatures record exactly the outer access paths a subplan can read,
//    with whole-variable and prefix subsumption, and an empty signature
//    marks an uncorrelated subplan;
//  - correlation keys pack the signature's values per outer binding, so
//    bindings that agree on the signature share one cache entry;
//  - the cache computes each distinct key exactly once, never memoizes
//    failures, charges resident entries against the query's memory budget,
//    and evicts LRU entries before failing on a memory trip;
//  - end to end, Database::Run under Strategy::kNaive shows hit/miss/
//    eviction counters in ExecStats and identical rows with the cache on,
//    off, or thrashing.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/correlation.h"
#include "algebra/logical_op.h"
#include "algebra/subplan.h"
#include "base/random.h"
#include "catalog/table.h"
#include "core/database.h"
#include "exec/executor.h"
#include "exec/query_guard.h"
#include "exec/subplan_cache.h"
#include "spill/spill_manager.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

namespace fs = std::filesystem;

using testutil::IntRow;

std::string MakeSpillBase(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("tmdb-test-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

::testing::AssertionResult SpillBaseEmpty(const std::string& base) {
  if (!fs::exists(base)) return ::testing::AssertionSuccess();
  for (const auto& entry : fs::directory_iterator(base)) {
    return ::testing::AssertionFailure()
           << "leaked spill artefact: " << entry.path().string();
  }
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------- correlation signatures

class CorrelationSignatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    TMDB_ASSERT_OK(y_->Insert(IntRow({"a", "b"}, {1, 2})));
  }

  Result<LogicalOpPtr> Scan() { return LogicalOp::Scan(y_); }

  std::shared_ptr<Table> y_;
};

TEST_F(CorrelationSignatureTest, ScanIsUncorrelated) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, Scan());
  CorrelationSignature sig = ComputeCorrelationSignature(*scan, {"x"});
  EXPECT_TRUE(sig.uncorrelated());
  EXPECT_EQ(sig.ToString(), "[]");
}

TEST_F(CorrelationSignatureTest, OuterFieldAccessBecomesAPath) {
  // σ_{x.b = y.b}(Y): the subplan reads exactly x.b of the outer row.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, Scan());
  Expr x = Expr::Var("x", Type::Tuple({{"b", Type::Int()}}));
  Expr y = Expr::Var("y", y_->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                      Expr::Must(Expr::Field(x, "b")),
                                      Expr::Must(Expr::Field(y, "b"))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr select,
                            LogicalOp::Select(std::move(scan), "y", pred));
  CorrelationSignature sig = ComputeCorrelationSignature(*select, {"x"});
  ASSERT_EQ(sig.paths.size(), 1u);
  EXPECT_EQ(sig.ToString(), "[x.b]");
  EXPECT_FALSE(sig.uncorrelated());
}

TEST_F(CorrelationSignatureTest, LocallyBoundVariablesAreNotRecorded) {
  // The select binds y itself; a pred reading only y is uncorrelated.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, Scan());
  Expr y = Expr::Var("y", y_->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kLt,
                                      Expr::Must(Expr::Field(y, "a")),
                                      Expr::Must(Expr::Field(y, "b"))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr select,
                            LogicalOp::Select(std::move(scan), "y", pred));
  CorrelationSignature sig = ComputeCorrelationSignature(*select, {"x"});
  EXPECT_TRUE(sig.uncorrelated());
}

TEST_F(CorrelationSignatureTest, WholeVariableAbsorbsItsFieldPaths) {
  // One op reads x.b, a later op reads all of x: the signature collapses
  // to the whole variable (its value determines every field).
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, Scan());
  Type x_type = Type::Tuple({{"b", Type::Int()}});
  Expr x = Expr::Var("x", x_type);
  Expr y = Expr::Var("y", y_->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                      Expr::Must(Expr::Field(x, "b")),
                                      Expr::Must(Expr::Field(y, "b"))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr select,
                            LogicalOp::Select(std::move(scan), "y", pred));
  Expr z = Expr::Var("z", select->output_type());
  Expr func = Expr::Must(Expr::MakeTuple({"outer", "inner"}, {x, z}));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr map,
                            LogicalOp::Map(std::move(select), "z", func));
  CorrelationSignature sig = ComputeCorrelationSignature(*map, {"x"});
  ASSERT_EQ(sig.paths.size(), 1u);
  EXPECT_EQ(sig.paths[0].var, "x");
  EXPECT_TRUE(sig.paths[0].path.empty());
  EXPECT_EQ(sig.ToString(), "[x]");
}

TEST_F(CorrelationSignatureTest, PathPrefixAbsorbsExtensions) {
  // Reads of x.a.b and x.a together prune to x.a.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, Scan());
  Type inner = Type::Tuple({{"b", Type::Int()}, {"c", Type::Int()}});
  Expr x = Expr::Var("x", Type::Tuple({{"a", inner}}));
  Expr y = Expr::Var("y", y_->schema());
  Expr xa = Expr::Must(Expr::Field(x, "a"));
  Expr deep = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                      Expr::Must(Expr::Field(xa, "b")),
                                      Expr::Must(Expr::Field(y, "b"))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr select,
                            LogicalOp::Select(std::move(scan), "y", deep));
  Expr shallow = Expr::Must(Expr::Binary(BinaryOp::kEq, xa, xa));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr outer_select,
      LogicalOp::Select(std::move(select), "y2", shallow));
  CorrelationSignature sig =
      ComputeCorrelationSignature(*outer_select, {"x"});
  ASSERT_EQ(sig.paths.size(), 1u);
  EXPECT_EQ(sig.ToString(), "[x.a]");
}

TEST_F(CorrelationSignatureTest, QuantifierBindsItsOwnVariable) {
  // EXISTS e ∈ x.s (e = y.b): e is bound by the quantifier, x.s is the
  // only outer read.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, Scan());
  Expr x = Expr::Var("x", Type::Tuple({{"s", Type::Set(Type::Int())}}));
  Expr y = Expr::Var("y", y_->schema());
  Expr e = Expr::Var("e", Type::Int());
  Expr pred = Expr::Must(Expr::Quantifier(
      QuantKind::kExists, "e", Expr::Must(Expr::Field(x, "s")),
      Expr::Must(Expr::Binary(BinaryOp::kEq, e,
                              Expr::Must(Expr::Field(y, "b"))))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr select,
                            LogicalOp::Select(std::move(scan), "y", pred));
  CorrelationSignature sig = ComputeCorrelationSignature(*select, {"x"});
  EXPECT_EQ(sig.ToString(), "[x.s]");
}

TEST(CorrelationKeyTest, PacksPathValuesInSignatureOrder) {
  CorrelationSignature sig;
  sig.paths.push_back({"x", {"a", "b"}});
  sig.paths.push_back({"x", {"c"}});
  Environment env;
  env.Bind("x", Value::Tuple({"a", "c"},
                             {Value::Tuple({"b"}, {Value::Int(7)}),
                              Value::Int(9)}));
  TMDB_ASSERT_OK_AND_ASSIGN(Value key, EvalCorrelationKey(sig, env));
  EXPECT_TRUE(key.Equals(Value::List({Value::Int(7), Value::Int(9)})));
}

TEST(CorrelationKeyTest, WalkStopsEarlyOnNonTupleValues) {
  // Outer-join padding can replace a tuple with NULL; the key then uses
  // the value reached so far instead of failing.
  CorrelationSignature sig;
  sig.paths.push_back({"x", {"a", "b"}});
  Environment env;
  env.Bind("x", Value::Tuple({"a"}, {Value::Null()}));
  TMDB_ASSERT_OK_AND_ASSIGN(Value key, EvalCorrelationKey(sig, env));
  EXPECT_TRUE(key.Equals(Value::List({Value::Null()})));
}

TEST(CorrelationKeyTest, UnboundVariableIsAnError) {
  CorrelationSignature sig;
  sig.paths.push_back({"x", {}});
  Environment env;
  auto key = EvalCorrelationKey(sig, env);
  ASSERT_FALSE(key.ok());
}

// --------------------------------------------------------- value sizing

TEST(ApproxValueBytesTest, GrowsWithStructure) {
  const uint64_t atom = ApproxValueBytes(Value::Int(1));
  EXPECT_GT(atom, 0u);
  std::vector<Value> many;
  for (int i = 0; i < 100; ++i) many.push_back(Value::Int(i));
  const uint64_t set = ApproxValueBytes(Value::Set(std::move(many)));
  EXPECT_GT(set, 100 * atom);
  const uint64_t str = ApproxValueBytes(Value::String(std::string(500, 'x')));
  EXPECT_GE(str, 500u);
}

// ------------------------------------------------------ SubplanCache unit

class SubplanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        t_, Table::Create("T", Type::Tuple({{"a", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(t_));
    subplan_ = std::make_unique<PlanSubplan>(std::move(scan),
                                             std::set<std::string>{});
  }

  /// Guard with an optional memory budget; no limits otherwise.
  void ResetGuard(uint64_t memory_budget) {
    GuardLimits limits;
    limits.memory_budget_bytes = memory_budget;
    guard_.Reset(limits, &stats_, nullptr);
  }

  std::shared_ptr<Table> t_;
  std::unique_ptr<PlanSubplan> subplan_;
  ExecStats stats_;
  QueryGuard guard_;
  SubplanCache cache_;
};

TEST_F(SubplanCacheTest, MissFulfillHit) {
  ResetGuard(0);
  cache_.Reset(&guard_, kDefaultSubplanCacheBytes);

  TMDB_ASSERT_OK_AND_ASSIGN(auto first,
                            cache_.Acquire(subplan_.get(), Value::Int(1)));
  EXPECT_FALSE(first.has_value());
  EXPECT_EQ(cache_.misses(), 1u);
  TMDB_ASSERT_OK(
      cache_.Fulfill(subplan_.get(), Value::Int(1), testutil::IntSet({4, 5})));
  EXPECT_GT(cache_.resident_bytes(), 0u);

  TMDB_ASSERT_OK_AND_ASSIGN(auto second,
                            cache_.Acquire(subplan_.get(), Value::Int(1)));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->Equals(testutil::IntSet({4, 5})));
  EXPECT_EQ(cache_.hits(), 1u);
  EXPECT_EQ(cache_.misses(), 1u);

  // A different key is a fresh miss.
  TMDB_ASSERT_OK_AND_ASSIGN(auto third,
                            cache_.Acquire(subplan_.get(), Value::Int(2)));
  EXPECT_FALSE(third.has_value());
  EXPECT_EQ(cache_.misses(), 2u);
  cache_.Abandon(subplan_.get(), Value::Int(2), Status::Internal("unused"));
  cache_.Reset(nullptr, 0);
}

TEST_F(SubplanCacheTest, FailuresAreNeverMemoized) {
  ResetGuard(0);
  cache_.Reset(&guard_, kDefaultSubplanCacheBytes);

  TMDB_ASSERT_OK_AND_ASSIGN(auto miss,
                            cache_.Acquire(subplan_.get(), Value::Int(1)));
  EXPECT_FALSE(miss.has_value());
  cache_.Abandon(subplan_.get(), Value::Int(1), Status::Internal("boom"));

  // The failure was not cached: the next Acquire recomputes.
  TMDB_ASSERT_OK_AND_ASSIGN(auto again,
                            cache_.Acquire(subplan_.get(), Value::Int(1)));
  EXPECT_FALSE(again.has_value());
  EXPECT_EQ(cache_.misses(), 2u);
  TMDB_ASSERT_OK(
      cache_.Fulfill(subplan_.get(), Value::Int(1), testutil::IntSet({1})));
  TMDB_ASSERT_OK_AND_ASSIGN(auto hit,
                            cache_.Acquire(subplan_.get(), Value::Int(1)));
  EXPECT_TRUE(hit.has_value());
  cache_.Reset(nullptr, 0);
}

TEST_F(SubplanCacheTest, SoftCapacityEvictsLeastRecentlyUsed) {
  ResetGuard(0);
  // Room for roughly one entry: every insertion pushes the previous one out.
  cache_.Reset(&guard_, 1);

  for (int k = 0; k < 4; ++k) {
    TMDB_ASSERT_OK_AND_ASSIGN(auto miss,
                              cache_.Acquire(subplan_.get(), Value::Int(k)));
    ASSERT_FALSE(miss.has_value());
    TMDB_ASSERT_OK(
        cache_.Fulfill(subplan_.get(), Value::Int(k), testutil::IntSet({k})));
  }
  EXPECT_EQ(cache_.evictions(), 3u);

  // The newest entry survives, the oldest is gone.
  TMDB_ASSERT_OK_AND_ASSIGN(auto newest,
                            cache_.Acquire(subplan_.get(), Value::Int(3)));
  EXPECT_TRUE(newest.has_value());
  TMDB_ASSERT_OK_AND_ASSIGN(auto oldest,
                            cache_.Acquire(subplan_.get(), Value::Int(0)));
  EXPECT_FALSE(oldest.has_value());
  cache_.Abandon(subplan_.get(), Value::Int(0), Status::Internal("unused"));
  cache_.Reset(nullptr, 0);
}

TEST_F(SubplanCacheTest, MemoryTripEvictsBeforeFailing) {
  // Budget sized for a handful of the ~8 KiB results below: insertions keep
  // succeeding past the trip point by shedding LRU entries, and Fulfill
  // never surfaces the memory trip to the caller.
  ResetGuard(64u << 10);
  cache_.Reset(&guard_, kDefaultSubplanCacheBytes);

  for (int k = 0; k < 32; ++k) {
    TMDB_ASSERT_OK_AND_ASSIGN(auto miss,
                              cache_.Acquire(subplan_.get(), Value::Int(k)));
    ASSERT_FALSE(miss.has_value());
    Status st = cache_.Fulfill(subplan_.get(), Value::Int(k),
                               Value::String(std::string(8 << 10, 'v')));
    TMDB_ASSERT_OK(st);
  }
  EXPECT_GT(cache_.evictions(), 0u);
  EXPECT_LE(cache_.resident_bytes(), 64u << 10);
  // The guard itself never tripped into a stuck state: a checkpoint passes
  // once the cache is the only consumer of the budget.
  cache_.Reset(nullptr, 0);
}

TEST_F(SubplanCacheTest, ResetRefundsTheGuardCharge) {
  ResetGuard(0);
  cache_.Reset(&guard_, kDefaultSubplanCacheBytes);
  TMDB_ASSERT_OK_AND_ASSIGN(auto miss,
                            cache_.Acquire(subplan_.get(), Value::Int(1)));
  ASSERT_FALSE(miss.has_value());
  TMDB_ASSERT_OK(
      cache_.Fulfill(subplan_.get(), Value::Int(1), testutil::IntSet({1})));
  const int64_t charged = guard_.memory_used();
  cache_.Reset(nullptr, 0);
  EXPECT_LT(guard_.memory_used(), charged);
  EXPECT_EQ(cache_.resident_bytes(), 0u);
}

// ----------------------------------------------- disk-backed overflow

TEST_F(SubplanCacheTest, CapacityOverflowSpillsToDiskAndFaultsBackIn) {
  const std::string base = MakeSpillBase("subcache-overflow");
  {
    SpillManager spill(base, /*block_bytes=*/4096, /*injector=*/nullptr);
    ResetGuard(0);
    cache_.Reset(&guard_, /*capacity_bytes=*/1, &spill);

    for (int k = 0; k < 4; ++k) {
      TMDB_ASSERT_OK_AND_ASSIGN(auto miss,
                                cache_.Acquire(subplan_.get(), Value::Int(k)));
      ASSERT_FALSE(miss.has_value());
      TMDB_ASSERT_OK(cache_.Fulfill(subplan_.get(), Value::Int(k),
                                    testutil::IntSet({k, k + 10})));
    }
    // With a spill manager the soft cap overflows to disk instead of
    // dropping: nothing is evicted outright, so nothing recomputes.
    EXPECT_EQ(cache_.disk_evictions(), 3u);
    EXPECT_EQ(cache_.evictions(), 0u);

    // The oldest entry is a hit again — faulted in from its spill file.
    TMDB_ASSERT_OK_AND_ASSIGN(auto oldest,
                              cache_.Acquire(subplan_.get(), Value::Int(0)));
    ASSERT_TRUE(oldest.has_value());
    EXPECT_TRUE(oldest->Equals(testutil::IntSet({0, 10})));
    EXPECT_EQ(cache_.disk_faults(), 1u);
    EXPECT_EQ(cache_.hits(), 1u);
    EXPECT_EQ(cache_.misses(), 4u);
    // Fault-in re-applies the soft cap: the displaced entry went to disk.
    EXPECT_EQ(cache_.disk_evictions(), 4u);

    cache_.Reset(nullptr, 0);
    spill.CleanupAll();
  }
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

TEST_F(SubplanCacheTest, FaultInOverBudgetServesUncachedAndKeepsTheFile) {
  const std::string base = MakeSpillBase("subcache-pressure");
  {
    SpillManager spill(base, 4096, nullptr);
    // A 4 KiB budget against ~8 KiB results: Fulfill cannot keep the entry
    // resident and has nothing older to shed, so it goes straight to disk.
    ResetGuard(4u << 10);
    cache_.Reset(&guard_, kDefaultSubplanCacheBytes, &spill);

    TMDB_ASSERT_OK_AND_ASSIGN(auto miss,
                              cache_.Acquire(subplan_.get(), Value::Int(1)));
    ASSERT_FALSE(miss.has_value());
    TMDB_ASSERT_OK(cache_.Fulfill(subplan_.get(), Value::Int(1),
                                  Value::String(std::string(8 << 10, 'v'))));
    EXPECT_EQ(cache_.disk_evictions(), 1u);
    EXPECT_EQ(cache_.resident_bytes(), 0u);

    // Every Acquire faults the value in, finds the budget still blown, and
    // hands it to the caller uncached — the file survives for the next one.
    for (uint64_t round = 1; round <= 2; ++round) {
      TMDB_ASSERT_OK_AND_ASSIGN(auto hit,
                                cache_.Acquire(subplan_.get(), Value::Int(1)));
      ASSERT_TRUE(hit.has_value());
      EXPECT_TRUE(hit->Equals(Value::String(std::string(8 << 10, 'v'))));
      EXPECT_EQ(cache_.disk_faults(), round);
      EXPECT_EQ(cache_.hits(), round);
      EXPECT_EQ(cache_.resident_bytes(), 0u);
    }

    cache_.Reset(nullptr, 0);
    spill.CleanupAll();
  }
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

TEST_F(SubplanCacheTest, ResetRemovesOverflowFiles) {
  const std::string base = MakeSpillBase("subcache-reset");
  {
    SpillManager spill(base, 4096, nullptr);
    ResetGuard(0);
    cache_.Reset(&guard_, 1, &spill);
    for (int k = 0; k < 3; ++k) {
      TMDB_ASSERT_OK_AND_ASSIGN(auto miss,
                                cache_.Acquire(subplan_.get(), Value::Int(k)));
      ASSERT_FALSE(miss.has_value());
      TMDB_ASSERT_OK(
          cache_.Fulfill(subplan_.get(), Value::Int(k), testutil::IntSet({k})));
    }
    EXPECT_EQ(cache_.disk_evictions(), 2u);

    // Reset drops the on-disk stubs through the manager they were written
    // with; the manager's own teardown then leaves the base directory bare.
    cache_.Reset(nullptr, 0);
    spill.CleanupAll();
  }
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

// --------------------------------------------------- end-to-end behaviour

class SubplanCacheE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorrelatedConfig config;
    config.num_outer = 200;
    config.num_inner = 60;
    config.correlation_scale = 10;
    TMDB_ASSERT_OK(LoadCorrelatedTables(&db_, config));
  }

  /// Correlated COUNT over I per distinct o.k — 10 distinct keys over 200
  /// outer rows. The (a = o.a, ...) projection keeps every output row
  /// distinct, so the result set size equals num_outer.
  static constexpr const char* kCorrelated =
      "SELECT (a = o.a, n = count(SELECT i.v FROM I i WHERE o.k = i.k)) "
      "FROM O o";

  RunOptions Naive(uint64_t cache_bytes) const {
    RunOptions options;
    options.strategy = Strategy::kNaive;
    options.subplan_cache_bytes = cache_bytes;
    return options;
  }

  Database db_;
};

TEST_F(SubplanCacheE2eTest, DistinctKeysComputedExactlyOnce) {
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult cached,
                            db_.Run(kCorrelated, Naive(16ull << 20)));
  EXPECT_EQ(cached.rows.size(), 200u);
  EXPECT_EQ(cached.stats.subplan_evals, 10u);
  EXPECT_EQ(cached.stats.subplan_cache_misses, 10u);
  EXPECT_EQ(cached.stats.subplan_cache_hits, 190u);
  EXPECT_EQ(cached.stats.subplan_cache_evictions, 0u);
  EXPECT_GT(cached.stats.guard_checkpoints, 0u);

  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult uncached,
                            db_.Run(kCorrelated, Naive(0)));
  EXPECT_EQ(uncached.stats.subplan_evals, 200u);
  EXPECT_EQ(uncached.stats.subplan_cache_hits, 0u);
  EXPECT_EQ(uncached.stats.subplan_cache_misses, 0u);
  EXPECT_TRUE(testutil::RowsEqual(cached.rows, uncached.rows));
}

TEST_F(SubplanCacheE2eTest, UncorrelatedSubplanEvaluatedOncePerQuery) {
  const char* query =
      "SELECT o.a FROM O o WHERE 0 IN (SELECT i.k FROM I i)";
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult result,
                            db_.Run(query, Naive(16ull << 20)));
  EXPECT_EQ(result.stats.subplan_evals, 1u);
  EXPECT_EQ(result.stats.subplan_cache_misses, 1u);
  EXPECT_EQ(result.stats.subplan_cache_hits, 199u);
}

TEST_F(SubplanCacheE2eTest, ThrashingCacheStaysCorrect) {
  // A 1-byte soft cap holds at most one entry while the round-robin keys
  // cycle through all ten: constant eviction, identical rows.
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                            db_.Run(kCorrelated, Naive(0)));
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult thrashing,
                            db_.Run(kCorrelated, Naive(1)));
  EXPECT_GT(thrashing.stats.subplan_cache_evictions, 0u);
  EXPECT_TRUE(testutil::RowsEqual(thrashing.rows, reference.rows));
}

TEST_F(SubplanCacheE2eTest, ThrashingWithSpillKeepsExactlyOnce) {
  // Same 1-byte soft cap as ThrashingCacheStaysCorrect, but with spilling
  // enabled the evicted results overflow to disk and fault back in: the
  // ten distinct keys are still computed exactly once while residency
  // stays at a single entry.
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                            db_.Run(kCorrelated, Naive(0)));
  const std::string base = MakeSpillBase("subcache-e2e");
  RunOptions options = Naive(1);
  options.enable_spill = true;
  options.spill_dir = base;
  options.spill_block_bytes = 4096;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult spilled, db_.Run(kCorrelated, options));
  EXPECT_EQ(spilled.stats.subplan_evals, 10u);
  EXPECT_EQ(spilled.stats.subplan_cache_misses, 10u);
  EXPECT_EQ(spilled.stats.subplan_cache_hits, 190u);
  EXPECT_EQ(spilled.stats.subplan_cache_evictions, 0u);
  EXPECT_GT(spilled.stats.subplan_cache_disk_evictions, 0u);
  EXPECT_GT(spilled.stats.subplan_cache_disk_faults, 0u);
  EXPECT_TRUE(testutil::RowsEqual(spilled.rows, reference.rows));
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

TEST_F(SubplanCacheE2eTest, TightMemoryBudgetEvictsBeforeFailing) {
  // A budget that fits the working set but not ten resident results: the
  // run must succeed by evicting, not fail with kResourceExhausted.
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                            db_.Run(kCorrelated, Naive(0)));
  RunOptions tight = Naive(16ull << 20);
  tight.memory_budget_bytes = 256u << 10;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult budgeted, db_.Run(kCorrelated, tight));
  EXPECT_TRUE(testutil::RowsEqual(budgeted.rows, reference.rows));
}

TEST_F(SubplanCacheE2eTest, StatsToStringShowsCacheCounters) {
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult result,
                            db_.Run(kCorrelated, Naive(16ull << 20)));
  const std::string rendered = result.stats.ToString();
  EXPECT_NE(rendered.find("subplan_cache_hits=190"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("subplan_cache_misses=10"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("guard_checkpoints="), std::string::npos)
      << rendered;
}

}  // namespace
}  // namespace tmdb
