// Execution edge cases: NULL padding visibility in outerjoin plans,
// IS-NULL-free nest join plans, heavy residual predicates on hash/merge
// joins, duplicate join keys on both sides, and stats accounting.

#include <gtest/gtest.h>

#include "catalog/table.h"
#include "core/database.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/merge_join.h"
#include "exec/nested_loop_join.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntRow;
using testutil::RowsEqual;

class ExecEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                            {"d", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    // Duplicate keys on both sides: d = 1 twice in X, b = 1 twice in Y.
    TMDB_ASSERT_OK(x_->InsertAll({IntRow({"e", "d"}, {1, 1}),
                                  IntRow({"e", "d"}, {2, 1}),
                                  IntRow({"e", "d"}, {3, 9})}));
    TMDB_ASSERT_OK(y_->InsertAll({IntRow({"a", "b"}, {10, 1}),
                                  IntRow({"a", "b"}, {11, 1}),
                                  IntRow({"a", "b"}, {12, 2})}));
  }

  JoinSpec Spec(JoinMode mode, Expr pred) {
    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = y_->schema();
    spec.pred = std::move(pred);
    spec.func = Expr::Var("y", y_->schema());
    spec.label = "g";
    return spec;
  }

  Expr KeyX() {
    return Expr::Must(Expr::Field(Expr::Var("x", x_->schema()), "d"));
  }
  Expr KeyY() {
    return Expr::Must(Expr::Field(Expr::Var("y", y_->schema()), "b"));
  }

  std::vector<Value> Run(PhysicalOp* op) {
    Executor executor;
    auto rows = executor.RunPhysical(op);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Value>();
  }

  std::shared_ptr<Table> x_;
  std::shared_ptr<Table> y_;
};

TEST_F(ExecEdgeTest, OuterJoinPadsWithNullsAndIsNullSeesThem) {
  // Left-outer hash join; then count padded rows via IS NULL.
  HashJoinOp join(PhysicalOpPtr(new TableScanOp(x_)),
                  PhysicalOpPtr(new TableScanOp(y_)),
                  Spec(JoinMode::kLeftOuter, Expr::True()), {KeyX()},
                  {KeyY()});
  std::vector<Value> rows = Run(&join);
  ASSERT_EQ(rows.size(), 5u);  // 2 left rows × 2 matches + 1 padded
  int padded = 0;
  for (const Value& row : rows) {
    TMDB_ASSERT_OK_AND_ASSIGN(Value a, row.Field("a"));
    if (a.is_null()) ++padded;
  }
  EXPECT_EQ(padded, 1);
}

TEST_F(ExecEdgeTest, NestJoinOutputNeverContainsNull) {
  HashJoinOp join(PhysicalOpPtr(new TableScanOp(x_)),
                  PhysicalOpPtr(new TableScanOp(y_)),
                  Spec(JoinMode::kNestJoin, Expr::True()), {KeyX()},
                  {KeyY()});
  std::vector<Value> rows = Run(&join);
  ASSERT_EQ(rows.size(), 3u);  // one per left row
  for (const Value& row : rows) {
    for (size_t i = 0; i < row.TupleSize(); ++i) {
      EXPECT_FALSE(row.FieldValue(i).is_null()) << row.ToString();
    }
  }
  // The dangling row carries ∅.
  bool found_empty = false;
  for (const Value& row : rows) {
    TMDB_ASSERT_OK_AND_ASSIGN(Value g, row.Field("g"));
    found_empty = found_empty || g.NumElements() == 0;
  }
  EXPECT_TRUE(found_empty);
}

TEST_F(ExecEdgeTest, ResidualPredicateAppliesAfterKeys) {
  // Hash join on d = b with residual y.a > 10: the (1, 10) pair drops out.
  Expr residual = Expr::Must(Expr::Binary(
      BinaryOp::kGt,
      Expr::Must(Expr::Field(Expr::Var("y", y_->schema()), "a")),
      Expr::Literal(Value::Int(10))));
  HashJoinOp hash(PhysicalOpPtr(new TableScanOp(x_)),
                  PhysicalOpPtr(new TableScanOp(y_)),
                  Spec(JoinMode::kInner, residual), {KeyX()}, {KeyY()});
  MergeJoinOp merge(PhysicalOpPtr(new TableScanOp(x_)),
                    PhysicalOpPtr(new TableScanOp(y_)),
                    Spec(JoinMode::kInner, residual), {KeyX()}, {KeyY()});
  std::vector<Value> hash_rows = Run(&hash);
  EXPECT_EQ(hash_rows.size(), 2u);  // (1,11) and (2,11)
  EXPECT_TRUE(RowsEqual(Run(&merge), hash_rows));
}

TEST_F(ExecEdgeTest, CrossProductViaEmptyKeyList) {
  // No keys at all: every row pairs with every row (hash join degenerates
  // to a single bucket — still correct).
  HashJoinOp join(PhysicalOpPtr(new TableScanOp(x_)),
                  PhysicalOpPtr(new TableScanOp(y_)),
                  Spec(JoinMode::kInner, Expr::True()), {}, {});
  EXPECT_EQ(Run(&join).size(), 9u);
}

TEST_F(ExecEdgeTest, StatsCountBuildAndProbe) {
  Executor executor;
  HashJoinOp join(PhysicalOpPtr(new TableScanOp(x_)),
                  PhysicalOpPtr(new TableScanOp(y_)),
                  Spec(JoinMode::kSemi, Expr::True()), {KeyX()}, {KeyY()});
  TMDB_ASSERT_OK_AND_ASSIGN(auto rows, executor.RunPhysical(&join));
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(executor.stats().rows_built, 3u);   // Y materialised once
  EXPECT_EQ(executor.stats().hash_probes, 3u);  // one probe per X row
}

TEST_F(ExecEdgeTest, MergeJoinAllKeysEqual) {
  // Degenerate ordering: every row shares one key — the merge must still
  // produce the full cross group.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto xx, Table::Create("XX", Type::Tuple({{"e", Type::Int()},
                                                {"d", Type::Int()}})));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto yy, Table::Create("YY", Type::Tuple({{"a", Type::Int()},
                                                {"b", Type::Int()}})));
  for (int i = 0; i < 4; ++i) {
    TMDB_ASSERT_OK(xx->Insert(IntRow({"e", "d"}, {i, 5})));
    TMDB_ASSERT_OK(yy->Insert(IntRow({"a", "b"}, {i, 5})));
  }
  Expr kx = Expr::Must(Expr::Field(Expr::Var("x", xx->schema()), "d"));
  Expr ky = Expr::Must(Expr::Field(Expr::Var("y", yy->schema()), "b"));
  JoinSpec spec;
  spec.mode = JoinMode::kInner;
  spec.left_var = "x";
  spec.right_var = "y";
  spec.right_type = yy->schema();
  spec.pred = Expr::True();
  MergeJoinOp merge(PhysicalOpPtr(new TableScanOp(xx)),
                    PhysicalOpPtr(new TableScanOp(yy)), std::move(spec),
                    {kx}, {ky});
  EXPECT_EQ(Run(&merge).size(), 16u);
}

TEST_F(ExecEdgeTest, TopLevelUnionOfSubqueries) {
  // (SELECT ...) UNION (SELECT ...) as a whole query, through the facade.
  Database db;
  TMDB_ASSERT_OK(db.ExecuteScript(
                     "CREATE TABLE A (v : INT); CREATE TABLE B (v : INT);"
                     "INSERT INTO A VALUES (v = 1), (v = 2);"
                     "INSERT INTO B VALUES (v = 2), (v = 3)")
                   .status());
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result,
      db.Run("(SELECT a.v FROM A a) UNION (SELECT b.v FROM B b)"));
  EXPECT_TRUE(RowsEqual(result.rows,
                        {Value::Int(1), Value::Int(2), Value::Int(3)}));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto diff,
      db.Run("(SELECT a.v FROM A a) DIFF (SELECT b.v FROM B b)"));
  EXPECT_TRUE(RowsEqual(diff.rows, {Value::Int(1)}));
}

}  // namespace
}  // namespace tmdb
