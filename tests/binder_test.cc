// Binder (sema) tests: scoping, correlation detection, typing, WITH
// inlining, and error reporting.

#include "sema/binder.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        auto r, catalog_.CreateTable(
                    "R", Type::Tuple({{"a", Type::Int()},
                                      {"s", Type::Set(Type::Int())}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        auto s, catalog_.CreateTable("S", Type::Tuple({{"b", Type::Int()}})));
    (void)r;
    (void)s;
  }

  Result<LogicalOpPtr> Bind(const std::string& query) {
    TMDB_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(query));
    Binder binder(&catalog_);
    return binder.BindQuery(*ast);
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ShapeOfSimpleQuery) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            Bind("SELECT x.a FROM R x WHERE x.a > 0"));
  ASSERT_EQ(plan->op_kind(), OpKind::kMap);
  ASSERT_EQ(plan->input()->op_kind(), OpKind::kSelect);
  ASSERT_EQ(plan->input()->input()->op_kind(), OpKind::kScan);
  EXPECT_TRUE(plan->output_type().is_int());
}

TEST_F(BinderTest, NoWhereMeansNoSelect) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan, Bind("SELECT x FROM R x"));
  ASSERT_EQ(plan->op_kind(), OpKind::kMap);
  EXPECT_EQ(plan->input()->op_kind(), OpKind::kScan);
}

TEST_F(BinderTest, CorrelatedSubqueryBecomesSubplanWithFreeVars) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      Bind("SELECT x FROM R x WHERE x.a IN (SELECT y.b FROM S y "
           "WHERE y.b = x.a)"));
  const Expr& pred = plan->input()->pred();
  ASSERT_TRUE(pred.is_binary());
  const Expr& sub = pred.rhs();
  ASSERT_TRUE(sub.is_subplan());
  EXPECT_EQ(sub.subplan().free_vars(), (std::set<std::string>{"x"}));
}

TEST_F(BinderTest, UncorrelatedSubqueryHasNoFreeVars) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      Bind("SELECT x FROM R x WHERE x.a IN (SELECT y.b FROM S y)"));
  const Expr& sub = plan->input()->pred().rhs();
  ASSERT_TRUE(sub.is_subplan());
  EXPECT_TRUE(sub.subplan().free_vars().empty());
}

TEST_F(BinderTest, InnerVariableShadowsOuter) {
  // The inner block reuses variable name x; its x refers to S rows, so the
  // subquery is NOT correlated.
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      Bind("SELECT x FROM R x WHERE x.a IN (SELECT x.b FROM S x)"));
  const Expr& sub = plan->input()->pred().rhs();
  ASSERT_TRUE(sub.is_subplan());
  EXPECT_TRUE(sub.subplan().free_vars().empty());
}

TEST_F(BinderTest, SetValuedAttributeAsFromOperand) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      Bind("SELECT x.a FROM R x WHERE 1 IN (SELECT e FROM x.s e)"));
  const Expr& sub = plan->input()->pred().rhs();
  ASSERT_TRUE(sub.is_subplan());
  EXPECT_EQ(sub.subplan().free_vars(), (std::set<std::string>{"x"}));
}

TEST_F(BinderTest, TableNameShadowedByVariable) {
  // FROM R S: variable S shadows table S inside the block.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            Bind("SELECT S.a FROM R S"));
  EXPECT_TRUE(plan->output_type().is_int());
}

TEST_F(BinderTest, TableAsSetExpression) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan, Bind("SELECT x FROM R x WHERE count(S) = 0"));
  EXPECT_EQ(plan->op_kind(), OpKind::kMap);
}

TEST_F(BinderTest, WithInliningRespectsScope) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr with_plan,
      Bind("SELECT x FROM R x WHERE count(z) = 0 "
           "WITH z = (SELECT y FROM S y WHERE y.b = x.a)"));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr direct_plan,
      Bind("SELECT x FROM R x WHERE count(SELECT y FROM S y "
           "WHERE y.b = x.a) = 0"));
  EXPECT_EQ(with_plan->ToString(), direct_plan->ToString());
}

TEST_F(BinderTest, MultiFromBuildsJoinWithQualifiedNames) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      Bind("SELECT (a = x.a, b = y.b) FROM R x, S y WHERE x.a = y.b"));
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Join"), std::string::npos) << rendered;
  // Qualified combined-row attributes avoid collisions.
  EXPECT_NE(rendered.find("x.a"), std::string::npos) << rendered;
}

TEST_F(BinderTest, DuplicateFromVariableRejected) {
  EXPECT_FALSE(Bind("SELECT x FROM R x, S x").ok());
}

TEST_F(BinderTest, Errors) {
  EXPECT_FALSE(Bind("SELECT x FROM NoTable x").ok());
  EXPECT_FALSE(Bind("SELECT x.nope FROM R x").ok());
  EXPECT_FALSE(Bind("SELECT y FROM R x").ok());            // unbound var
  EXPECT_FALSE(Bind("SELECT x FROM R x WHERE x.a").ok());  // non-bool WHERE
  EXPECT_FALSE(Bind("SELECT x FROM R x WHERE x.a + true = 1").ok());
  EXPECT_FALSE(Bind("SELECT x FROM x.s e").ok());          // unbound x
  // Errors carry source positions.
  auto bad = Bind("SELECT x.nope FROM R x");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos)
      << bad.status().ToString();
}

TEST_F(BinderTest, TopLevelNonSetExpressionRejected) {
  EXPECT_FALSE(Bind("1 + 2").ok());
}

TEST_F(BinderTest, TopLevelSetExpressionBecomesExprSource) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan, Bind("{1, 2, 3}"));
  EXPECT_EQ(plan->op_kind(), OpKind::kExprSource);
  EXPECT_TRUE(plan->output_type().is_int());
}

TEST_F(BinderTest, QuantifierBindsItsVariable) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      Bind("SELECT x FROM R x WHERE EXISTS v IN x.s (v = x.a)"));
  const Expr& pred = plan->input()->pred();
  ASSERT_TRUE(pred.is_quantifier());
  EXPECT_EQ(pred.quant_var(), "v");
  EXPECT_TRUE(pred.quant_pred().References("x"));
}

TEST_F(BinderTest, SubstituteIdentShadowing) {
  // Substitution must not descend into a quantifier binding the same name.
  TMDB_ASSERT_OK_AND_ASSIGN(AstPtr target, ParseQuery("EXISTS z IN s (z = 1)"));
  TMDB_ASSERT_OK_AND_ASSIGN(AstPtr replacement, ParseQuery("{9}"));
  SubstituteIdent(target.get(), "z", *replacement);
  EXPECT_EQ(target->ToString(), "EXISTS z IN s ((z = 1))");
  // And collection position IS substituted.
  TMDB_ASSERT_OK_AND_ASSIGN(AstPtr target2, ParseQuery("EXISTS v IN z (v = 1)"));
  SubstituteIdent(target2.get(), "z", *replacement);
  EXPECT_EQ(target2->ToString(), "EXISTS v IN {9} ((v = 1))");
}

}  // namespace
}  // namespace tmdb
