// Plan-simplification rules (rewrite/simplify): trivial selects, identity
// and strip projections, select merging, projection composition — and the
// duplicate-safety guards around Unnest.

#include "rewrite/simplify.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntRow;
using testutil::RowsEqual;

class SimplifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    TMDB_ASSERT_OK(x_->InsertAll({IntRow({"a", "b"}, {1, 10}),
                                  IntRow({"a", "b"}, {2, 20})}));
    TMDB_ASSERT_OK_AND_ASSIGN(scan_, LogicalOp::Scan(x_));
  }

  Expr FieldOf(const char* f) {
    return Expr::Must(Expr::Field(Expr::Var("x", x_->schema()), f));
  }
  Expr GtZero(Expr e) {
    return Expr::Must(Expr::Binary(BinaryOp::kGt, std::move(e),
                                   Expr::Literal(Value::Int(0))));
  }

  /// Asserts `plan` and its simplification produce the same rows.
  void ExpectSameRows(const LogicalOpPtr& plan) {
    TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr simplified, SimplifyPlan(plan));
    Executor executor;
    TMDB_ASSERT_OK_AND_ASSIGN(auto before, executor.Run(plan));
    TMDB_ASSERT_OK_AND_ASSIGN(auto after, executor.Run(simplified));
    EXPECT_TRUE(RowsEqual(before, after));
  }

  std::shared_ptr<Table> x_;
  LogicalOpPtr scan_;
};

TEST_F(SimplifyTest, TrueSelectRemoved) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            LogicalOp::Select(scan_, "x", Expr::True()));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr simplified, SimplifyPlan(plan));
  EXPECT_EQ(simplified->op_kind(), OpKind::kScan);
}

TEST_F(SimplifyTest, IdentityMapRemoved) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      LogicalOp::Map(scan_, "x", Expr::Var("x", x_->schema())));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr simplified, SimplifyPlan(plan));
  EXPECT_EQ(simplified->op_kind(), OpKind::kScan);
  ExpectSameRows(plan);
}

TEST_F(SimplifyTest, AdjacentSelectsMerge) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr inner, LogicalOp::Select(scan_, "x", GtZero(FieldOf("a"))));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr outer, LogicalOp::Select(inner, "x", GtZero(FieldOf("b"))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr simplified, SimplifyPlan(outer));
  ASSERT_EQ(simplified->op_kind(), OpKind::kSelect);
  EXPECT_EQ(simplified->input()->op_kind(), OpKind::kScan);
  ExpectSameRows(outer);
}

TEST_F(SimplifyTest, AdjacentMapsCompose) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr pair, Expr::MakeTuple({"s"}, {Expr::Must(Expr::Binary(
                                            BinaryOp::kAdd, FieldOf("a"),
                                            FieldOf("b")))}));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr inner,
                            LogicalOp::Map(scan_, "x", pair));
  Expr outer_expr = Expr::Must(
      Expr::Field(Expr::Var("x", inner->output_type()), "s"));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr outer,
                            LogicalOp::Map(inner, "x", outer_expr));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr simplified, SimplifyPlan(outer));
  ASSERT_EQ(simplified->op_kind(), OpKind::kMap);
  EXPECT_EQ(simplified->input()->op_kind(), OpKind::kScan);
  ExpectSameRows(outer);
}

TEST_F(SimplifyTest, IdentityMapAboveUnnestStays) {
  // μ can emit duplicate rows; the identity Map deduplicates, so it must
  // NOT be removed above an Unnest.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto nested,
      Table::Create("N", Type::Tuple(
                             {{"k", Type::Int()},
                              {"s", Type::Set(Type::Tuple(
                                        {{"e", Type::Int()}}))}})));
  auto elem = [](int64_t e) { return Value::Tuple({"e"}, {Value::Int(e)}); };
  // Two rows that collapse to the same (k, e) pairs after unnesting.
  TMDB_ASSERT_OK(nested->Insert(Value::Tuple(
      {"k", "s"}, {Value::Int(1), Value::Set({elem(7)})})));
  TMDB_ASSERT_OK(nested->Insert(Value::Tuple(
      {"k", "s"}, {Value::Int(1), Value::Set({elem(7), elem(8)})})));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(nested));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr unnest, LogicalOp::Unnest(scan, "s"));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr dedup,
      LogicalOp::Map(unnest, "x", Expr::Var("x", unnest->output_type())));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr simplified, SimplifyPlan(dedup));
  EXPECT_EQ(simplified->op_kind(), OpKind::kMap);  // kept

  Executor executor;
  TMDB_ASSERT_OK_AND_ASSIGN(auto raw, executor.Run(unnest));
  TMDB_ASSERT_OK_AND_ASSIGN(auto deduped, executor.Run(simplified));
  EXPECT_EQ(raw.size(), 3u);     // duplicate (1, 7) emitted twice
  EXPECT_EQ(deduped.size(), 2u);  // Map collapses it
}

TEST_F(SimplifyTest, EndToEndPlansAreClean) {
  // Through the Database facade, the nestjoin strategy's plans contain no
  // leftover identity/strip chains: at most one Map above the Select.
  Database db;
  TMDB_ASSERT_OK(db.ExecuteScript(
                       "CREATE TABLE R (a : P(INT), b : INT);"
                       "CREATE TABLE S (a : INT, b : INT)")
                     .status());
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      db.Plan("SELECT x FROM R x WHERE x.a SUBSETEQ "
              "(SELECT y.a FROM S y WHERE x.b = y.b)",
              Strategy::kNestJoin));
  // Shape: Map(strip∘F) over Select over NestJoin — the two maps the
  // unnester builds have been composed into one.
  ASSERT_EQ(plan->op_kind(), OpKind::kMap);
  EXPECT_EQ(plan->input()->op_kind(), OpKind::kSelect);
  EXPECT_EQ(plan->input()->input()->op_kind(), OpKind::kNestJoin);
}

}  // namespace
}  // namespace tmdb
