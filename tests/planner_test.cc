// Planner tests: equi-key extraction, implementation choice, forced
// implementations, and cardinality estimation sanity.

#include "optimizer/planner.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using testutil::RowsEqual;

TEST(SplitEquiKeysTest, ExtractsBothOrientations) {
  Type xt = Type::Tuple({{"a", Type::Int()}, {"b", Type::Int()}});
  Type yt = Type::Tuple({{"c", Type::Int()}, {"d", Type::Int()}});
  Expr x = Expr::Var("x", xt);
  Expr y = Expr::Var("y", yt);
  Expr xa = Expr::Must(Expr::Field(x, "a"));
  Expr yc = Expr::Must(Expr::Field(y, "c"));
  Expr xb = Expr::Must(Expr::Field(x, "b"));
  Expr yd = Expr::Must(Expr::Field(y, "d"));

  // x.a = y.c ∧ y.d = x.b ∧ x.a > 0
  Expr pred = Expr::AndAll(
      {Expr::Must(Expr::Binary(BinaryOp::kEq, xa, yc)),
       Expr::Must(Expr::Binary(BinaryOp::kEq, yd, xb)),
       Expr::Must(Expr::Binary(BinaryOp::kGt, xa,
                               Expr::Literal(Value::Int(0))))});
  EquiKeySplit split = SplitEquiKeys(pred, "x", "y");
  ASSERT_EQ(split.left_keys.size(), 2u);
  EXPECT_EQ(split.left_keys[0].ToString(), "x.a");
  EXPECT_EQ(split.right_keys[0].ToString(), "y.c");
  EXPECT_EQ(split.left_keys[1].ToString(), "x.b");   // swapped orientation
  EXPECT_EQ(split.right_keys[1].ToString(), "y.d");
  EXPECT_EQ(split.residual.ToString(), "(x.a > 0)");
}

TEST(SplitEquiKeysTest, NonEquiPredicatesGoToResidual) {
  Type xt = Type::Tuple({{"a", Type::Int()}});
  Type yt = Type::Tuple({{"c", Type::Int()}});
  Expr xa = Expr::Must(Expr::Field(Expr::Var("x", xt), "a"));
  Expr yc = Expr::Must(Expr::Field(Expr::Var("y", yt), "c"));
  Expr lt = Expr::Must(Expr::Binary(BinaryOp::kLt, xa, yc));
  EquiKeySplit split = SplitEquiKeys(lt, "x", "y");
  EXPECT_TRUE(split.left_keys.empty());
  EXPECT_EQ(split.residual.ToString(), "(x.a < y.c)");
  // Mixed-variable sides cannot be keys: (x.a = x.a) references x only on
  // both sides → residual.
  Expr self = Expr::Must(Expr::Binary(BinaryOp::kEq, xa, xa));
  EquiKeySplit split2 = SplitEquiKeys(self, "x", "y");
  EXPECT_TRUE(split2.left_keys.empty());
}

class PlannerChoiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScaleConfig config;
    config.num_x = 200;
    config.num_y = 200;
    TMDB_ASSERT_OK(LoadScaleTables(&db_, config));
  }

  std::string PhysicalPlanFor(const std::string& query, JoinImpl impl) {
    auto logical = db_.Plan(query, Strategy::kNestJoin);
    EXPECT_TRUE(logical.ok()) << logical.status().ToString();
    PlannerOptions options;
    options.join_impl = impl;
    Planner planner(options);
    auto physical = planner.Plan(*logical);
    EXPECT_TRUE(physical.ok()) << physical.status().ToString();
    return (*physical)->ToString();
  }

  Database db_;
};

TEST_F(PlannerChoiceTest, AutoPicksHashForEquiJoin) {
  const std::string query =
      "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y "
      "WHERE x.b = y.b)";
  EXPECT_NE(PhysicalPlanFor(query, JoinImpl::kAuto).find("HashJoin"),
            std::string::npos);
}

TEST_F(PlannerChoiceTest, ForcedImplementationsAreHonoured) {
  const std::string query =
      "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y "
      "WHERE x.b = y.b)";
  EXPECT_NE(PhysicalPlanFor(query, JoinImpl::kNestedLoop).find(
                "NestedLoopJoin"),
            std::string::npos);
  EXPECT_NE(PhysicalPlanFor(query, JoinImpl::kMerge).find("MergeJoin"),
            std::string::npos);
  EXPECT_NE(PhysicalPlanFor(query, JoinImpl::kHash).find("HashJoin"),
            std::string::npos);
}

TEST_F(PlannerChoiceTest, NonEquiJoinFallsBackToNestedLoop) {
  // A grouping predicate over a non-equi correlation leaves the nest join
  // without any equi key: even when hash is requested, a keyless join
  // cannot be hashed.
  const std::string query =
      "SELECT x.a FROM X x WHERE count(SELECT y.c FROM Y y "
      "WHERE x.b < y.b) = x.a";
  EXPECT_NE(PhysicalPlanFor(query, JoinImpl::kHash).find("NestedLoopJoin"),
            std::string::npos);
}

TEST_F(PlannerChoiceTest, MembershipRewriteCreatesItsOwnEquiKey) {
  // x.a IN z contributes the equi conjunct v = x.a, so even a non-equi
  // *correlation* still hash-joins after the rewrite — a nice consequence
  // of flattening that the nested form cannot exploit.
  const std::string query =
      "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y "
      "WHERE x.b < y.b)";
  EXPECT_NE(PhysicalPlanFor(query, JoinImpl::kAuto).find("HashJoin"),
            std::string::npos);
}

TEST_F(PlannerChoiceTest, AllImplementationsProduceSameRows) {
  const std::string query =
      "SELECT (a = x.a, zs = SELECT y.c FROM Y y WHERE x.b = y.b) FROM X x";
  RunOptions hash;
  hash.join_impl = JoinImpl::kHash;
  RunOptions merge;
  merge.join_impl = JoinImpl::kMerge;
  RunOptions nl;
  nl.join_impl = JoinImpl::kNestedLoop;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult h, db_.Run(query, hash));
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult m, db_.Run(query, merge));
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult n, db_.Run(query, nl));
  EXPECT_TRUE(RowsEqual(h.rows, m.rows));
  EXPECT_TRUE(RowsEqual(h.rows, n.rows));
}

TEST_F(PlannerChoiceTest, CardinalityEstimates) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      db_.Plan("SELECT x.a FROM X x WHERE x.a > 0", Strategy::kNaive));
  // Map over Select over Scan: estimate shrinks through the Select.
  const double scan =
      EstimateCardinality(*plan->input()->input());
  const double select = EstimateCardinality(*plan->input());
  EXPECT_GT(scan, 0.0);
  EXPECT_LT(select, scan);
}

}  // namespace
}  // namespace tmdb
