#include "algebra/logical_op.h"

#include <gtest/gtest.h>

#include "algebra/subplan.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_table_, Table::Create("X", Type::Tuple({{"a", Type::Int()},
                                                  {"b", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_table_, Table::Create("Y", Type::Tuple({{"c", Type::Int()},
                                                  {"d", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(x_, LogicalOp::Scan(x_table_));
    TMDB_ASSERT_OK_AND_ASSIGN(y_, LogicalOp::Scan(y_table_));
  }

  Expr XField(const char* f) {
    return Expr::Must(Expr::Field(Expr::Var("x", x_table_->schema()), f));
  }
  Expr YField(const char* f) {
    return Expr::Must(Expr::Field(Expr::Var("y", y_table_->schema()), f));
  }
  Expr EqPred() {
    return Expr::Must(Expr::Binary(BinaryOp::kEq, XField("b"), YField("c")));
  }

  std::shared_ptr<Table> x_table_;
  std::shared_ptr<Table> y_table_;
  LogicalOpPtr x_;
  LogicalOpPtr y_;
};

TEST_F(AlgebraTest, ScanSchema) {
  EXPECT_EQ(x_->op_kind(), OpKind::kScan);
  EXPECT_TRUE(x_->output_type().Equals(x_table_->schema()));
  EXPECT_FALSE(LogicalOp::Scan(nullptr).ok());
}

TEST_F(AlgebraTest, SelectKeepsSchemaAndChecksPredType) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr sel,
      LogicalOp::Select(x_, "x", Expr::Must(Expr::Binary(
                                     BinaryOp::kGt, XField("a"),
                                     Expr::Literal(Value::Int(0))))));
  EXPECT_TRUE(sel->output_type().Equals(x_->output_type()));
  EXPECT_FALSE(
      LogicalOp::Select(x_, "x", Expr::Literal(Value::Int(1))).ok());
}

TEST_F(AlgebraTest, MapOutputType) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr mapped,
                            LogicalOp::Map(x_, "x", XField("a")));
  EXPECT_TRUE(mapped->output_type().is_int());
}

TEST_F(AlgebraTest, JoinSchemaIsConcat) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr join,
                            LogicalOp::Join(x_, y_, "x", "y", EqPred()));
  EXPECT_EQ(join->output_type().fields().size(), 4u);
  // Colliding attribute names are rejected.
  EXPECT_FALSE(LogicalOp::Join(x_, x_, "x", "y", Expr::True()).ok());
  // Same variable on both sides is rejected.
  EXPECT_FALSE(LogicalOp::Join(x_, y_, "x", "x", EqPred()).ok());
}

TEST_F(AlgebraTest, SemiAntiKeepLeftSchema) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr semi,
                            LogicalOp::SemiJoin(x_, y_, "x", "y", EqPred()));
  EXPECT_TRUE(semi->output_type().Equals(x_->output_type()));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr anti,
                            LogicalOp::AntiJoin(x_, y_, "x", "y", EqPred()));
  EXPECT_TRUE(anti->output_type().Equals(x_->output_type()));
}

TEST_F(AlgebraTest, NestJoinSchemaAddsLabel) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nj,
      LogicalOp::NestJoin(x_, y_, "x", "y", EqPred(), YField("d"), "zs"));
  const Type& t = nj->output_type();
  ASSERT_EQ(t.fields().size(), 3u);
  EXPECT_EQ(t.fields()[2].name, "zs");
  EXPECT_TRUE(t.fields()[2].type.Equals(Type::Set(Type::Int())));
  // Label colliding with a left attribute violates the paper's side
  // condition and is rejected.
  EXPECT_FALSE(
      LogicalOp::NestJoin(x_, y_, "x", "y", EqPred(), YField("d"), "a").ok());
}

TEST_F(AlgebraTest, NestSchema) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nest,
      LogicalOp::Nest(y_, {"c"}, "y", YField("d"), "ds", false));
  const Type& t = nest->output_type();
  ASSERT_EQ(t.fields().size(), 2u);
  EXPECT_EQ(t.fields()[0].name, "c");
  EXPECT_EQ(t.fields()[1].name, "ds");
  EXPECT_FALSE(
      LogicalOp::Nest(y_, {"nope"}, "y", YField("d"), "ds", false).ok());
}

TEST_F(AlgebraTest, UnnestSchema) {
  // Build a plan with a set-of-tuples attribute via NestJoin, then Unnest.
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nj,
      LogicalOp::NestJoin(x_, y_, "x", "y", EqPred(),
                          Expr::Var("y", y_table_->schema()), "ys"));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr unnest, LogicalOp::Unnest(nj, "ys"));
  EXPECT_EQ(unnest->output_type().fields().size(), 4u);  // a, b, c, d
  // Unnesting a non-set attribute fails.
  EXPECT_FALSE(LogicalOp::Unnest(x_, "a").ok());
}

TEST_F(AlgebraTest, UnionDifferenceTypeChecking) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr u, LogicalOp::Union(x_, x_));
  EXPECT_TRUE(u->output_type().Equals(x_->output_type()));
  EXPECT_FALSE(LogicalOp::Union(x_, y_).ok());  // incompatible schemas
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr d, LogicalOp::Difference(x_, x_));
  EXPECT_TRUE(d->output_type().Equals(x_->output_type()));
}

TEST_F(AlgebraTest, ExprSource) {
  Expr set = Expr::Literal(Value::Set({Value::Int(1), Value::Int(2)}));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr src, LogicalOp::ExprSource(set));
  EXPECT_TRUE(src->output_type().is_int());
  EXPECT_FALSE(LogicalOp::ExprSource(Expr::Literal(Value::Int(1))).ok());
}

TEST_F(AlgebraTest, PlanFreeVars) {
  // Select over X referencing an outer variable "o".
  Expr outer = Expr::Var("o", Type::Tuple({{"k", Type::Int()}}));
  Expr pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, XField("b"), Expr::Must(Expr::Field(outer, "k"))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr sel, LogicalOp::Select(x_, "x", pred));
  EXPECT_EQ(PlanFreeVars(*sel), (std::set<std::string>{"o"}));
  // The plan's own iteration variable is not free.
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr own,
      LogicalOp::Select(x_, "x",
                        Expr::Must(Expr::Binary(BinaryOp::kGt, XField("a"),
                                                Expr::Literal(Value::Int(0))))));
  EXPECT_TRUE(PlanFreeVars(*own).empty());
}

TEST_F(AlgebraTest, ToStringShowsTree) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr join,
                            LogicalOp::Join(x_, y_, "x", "y", EqPred()));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr mapped,
                            LogicalOp::Map(join, "j",
                                           Expr::Var("j", join->output_type())));
  const std::string rendered = mapped->ToString();
  EXPECT_NE(rendered.find("Map"), std::string::npos);
  EXPECT_NE(rendered.find("Join"), std::string::npos);
  EXPECT_NE(rendered.find("Scan(X)"), std::string::npos);
  EXPECT_NE(rendered.find("Scan(Y)"), std::string::npos);
}

TEST_F(AlgebraTest, SubplanExprToString) {
  Expr subplan = PlanSubplan::MakeExpr(x_, {"o"});
  EXPECT_TRUE(subplan.is_subplan());
  EXPECT_NE(subplan.ToString().find("SUBQUERY"), std::string::npos);
  EXPECT_EQ(subplan.subplan().free_vars(), (std::set<std::string>{"o"}));
  EXPECT_TRUE(subplan.type().Equals(Type::Set(x_->output_type())));
}

}  // namespace
}  // namespace tmdb
