// Unit tests for the Table 2 predicate classifier (Theorem 1): every row
// of the paper's table, plus the closure rules (negation, FORALL↔¬∃).

#include "rewrite/classifier.h"

#include <gtest/gtest.h>

#include "algebra/subplan.h"
#include "catalog/table.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // x : ⟨a : P(INT), b : INT⟩ — covers both scalar and set-valued x.a.
    x_type_ = Type::Tuple({{"a", Type::Set(Type::Int())}, {"b", Type::Int()}});
    x_ = Expr::Var("x", x_type_);
    xa_ = Expr::Must(Expr::Field(x_, "a"));
    xb_ = Expr::Must(Expr::Field(x_, "b"));
    // z = subquery producing a set of INT.
    TMDB_ASSERT_OK_AND_ASSIGN(
        auto table, Table::Create("Y", Type::Tuple({{"a", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(table));
    Expr row = Expr::Var("y", table->schema());
    TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr mapped,
                              LogicalOp::Map(scan, "y",
                                             Expr::Must(Expr::Field(row, "a"))));
    z_ = PlanSubplan::MakeExpr(mapped, {"x"});
  }

  RewriteForm Classify(const Expr& pred) {
    auto result = ClassifyConjunct(pred, z_, "v");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return RewriteForm::kGrouping;
    last_ = std::move(result).value();
    return last_.form;
  }

  Expr Bin(BinaryOp op, Expr l, Expr r) {
    return Expr::Must(Expr::Binary(op, std::move(l), std::move(r)));
  }
  Expr CountZ() { return Expr::Must(Expr::Aggregate(AggFunc::kCount, z_)); }
  Expr EmptySet() { return Expr::Literal(Value::EmptySet()); }
  Expr Int(int64_t v) { return Expr::Literal(Value::Int(v)); }

  Type x_type_;
  Expr x_, xa_, xb_, z_;
  PredicateClass last_;
};

// -------- rows of Table 2 that rewrite (→ semijoin / antijoin) -----------

TEST_F(ClassifierTest, ZEqualsEmpty) {
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, z_, EmptySet())),
            RewriteForm::kNotExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, EmptySet(), z_)),
            RewriteForm::kNotExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kNe, z_, EmptySet())),
            RewriteForm::kExists);
}

TEST_F(ClassifierTest, CountZero) {
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, CountZ(), Int(0))),
            RewriteForm::kNotExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, Int(0), CountZ())),
            RewriteForm::kNotExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kNe, CountZ(), Int(0))),
            RewriteForm::kExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kGt, CountZ(), Int(0))),
            RewriteForm::kExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kGe, CountZ(), Int(1))),
            RewriteForm::kExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kLt, CountZ(), Int(1))),
            RewriteForm::kNotExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kLe, CountZ(), Int(0))),
            RewriteForm::kNotExists);
  // Mirrored: 0 < count(z) ≡ count(z) > 0.
  EXPECT_EQ(Classify(Bin(BinaryOp::kLt, Int(0), CountZ())),
            RewriteForm::kExists);
}

TEST_F(ClassifierTest, Membership) {
  EXPECT_EQ(Classify(Bin(BinaryOp::kIn, xb_, z_)), RewriteForm::kExists);
  EXPECT_EQ(last_.var, "v");
  ASSERT_TRUE(last_.inner.has_value());
  EXPECT_EQ(last_.inner->ToString(), "(v = x.b)");
  EXPECT_EQ(Classify(Bin(BinaryOp::kNotIn, xb_, z_)),
            RewriteForm::kNotExists);
}

TEST_F(ClassifierTest, SupersetRewrites) {
  // x.a ⊇ z  ==>  ¬∃v∈z (v ∉ x.a); also written z ⊆ x.a.
  EXPECT_EQ(Classify(Bin(BinaryOp::kSupersetEq, xa_, z_)),
            RewriteForm::kNotExists);
  EXPECT_EQ(last_.inner->ToString(), "(v NOT IN x.a)");
  EXPECT_EQ(Classify(Bin(BinaryOp::kSubsetEq, z_, xa_)),
            RewriteForm::kNotExists);
}

TEST_F(ClassifierTest, IntersectionEmptiness) {
  Expr inter = Bin(BinaryOp::kIntersect, xa_, z_);
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, inter, EmptySet())),
            RewriteForm::kNotExists);
  EXPECT_EQ(last_.inner->ToString(), "(v IN x.a)");
  EXPECT_EQ(Classify(Bin(BinaryOp::kNe, inter, EmptySet())),
            RewriteForm::kExists);
  // Mirrored operand order: (z ∩ x.a) = ∅ and ∅ = (x.a ∩ z).
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, Bin(BinaryOp::kIntersect, z_, xa_),
                         EmptySet())),
            RewriteForm::kNotExists);
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, EmptySet(), inter)),
            RewriteForm::kNotExists);
}

TEST_F(ClassifierTest, DirectQuantifiers) {
  Expr v = Expr::Var("w", Type::Int());
  Expr body = Bin(BinaryOp::kGt, v, Int(3));
  EXPECT_EQ(Classify(Expr::Must(
                Expr::Quantifier(QuantKind::kExists, "w", z_, body))),
            RewriteForm::kExists);
  EXPECT_EQ(last_.var, "w");
  EXPECT_EQ(Classify(Expr::Must(
                Expr::Quantifier(QuantKind::kForAll, "w", z_, body))),
            RewriteForm::kNotExists);
  EXPECT_EQ(last_.inner->ToString(), "NOT (w > 3)");
}

TEST_F(ClassifierTest, QuantifierOverOtherCollection) {
  // ∀w ∈ x.a (w ∉ z) ≡ x.a ∩ z = ∅  ==>  ¬∃v∈z (v ∈ x.a).
  Expr w = Expr::Var("w", Type::Int());
  EXPECT_EQ(Classify(Expr::Must(Expr::Quantifier(
                QuantKind::kForAll, "w", xa_,
                Bin(BinaryOp::kNotIn, w, z_)))),
            RewriteForm::kNotExists);
  // ∃w ∈ x.a (w ∈ z)  ==>  ∃v∈z (v ∈ x.a).
  EXPECT_EQ(Classify(Expr::Must(Expr::Quantifier(
                QuantKind::kExists, "w", xa_, Bin(BinaryOp::kIn, w, z_)))),
            RewriteForm::kExists);
  // ∀w ∈ x.a (w ∈ z) ≡ x.a ⊆ z — grouping.
  EXPECT_EQ(Classify(Expr::Must(Expr::Quantifier(
                QuantKind::kForAll, "w", xa_, Bin(BinaryOp::kIn, w, z_)))),
            RewriteForm::kGrouping);
  // ∃w ∈ x.a (w ∉ z) ≡ ¬(x.a ⊆ z) — grouping.
  EXPECT_EQ(Classify(Expr::Must(Expr::Quantifier(
                QuantKind::kExists, "w", xa_,
                Bin(BinaryOp::kNotIn, w, z_)))),
            RewriteForm::kGrouping);
}

TEST_F(ClassifierTest, NegationFlips) {
  Expr in = Bin(BinaryOp::kIn, xb_, z_);
  EXPECT_EQ(Classify(Expr::Not(in)), RewriteForm::kNotExists);
  EXPECT_EQ(Classify(Expr::Not(Expr::Not(in))), RewriteForm::kExists);
  // Negation of a grouping predicate stays grouping.
  Expr subset = Bin(BinaryOp::kSubsetEq, xa_, z_);
  EXPECT_EQ(Classify(Expr::Not(subset)), RewriteForm::kGrouping);
}

// -------- rows of Table 2 that need grouping ------------------------------

TEST_F(ClassifierTest, AggregateComparisons) {
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, xb_, CountZ())),
            RewriteForm::kGrouping);
  EXPECT_EQ(Classify(Bin(BinaryOp::kLt, xb_, CountZ())),
            RewriteForm::kGrouping);
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, xb_,
                         Expr::Must(Expr::Aggregate(AggFunc::kSum, z_)))),
            RewriteForm::kGrouping);
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, CountZ(), Int(2))),
            RewriteForm::kGrouping);  // count(z) = 2 needs the whole set
}

TEST_F(ClassifierTest, SubsetFamilyGrouping) {
  EXPECT_EQ(Classify(Bin(BinaryOp::kSubsetEq, xa_, z_)),
            RewriteForm::kGrouping);
  EXPECT_EQ(Classify(Bin(BinaryOp::kSubset, xa_, z_)),
            RewriteForm::kGrouping);
  EXPECT_EQ(Classify(Bin(BinaryOp::kSuperset, xa_, z_)),
            RewriteForm::kGrouping);  // proper ⊃ needs cardinality
  EXPECT_EQ(Classify(Bin(BinaryOp::kSubset, z_, xa_)),
            RewriteForm::kGrouping);  // z ⊂ x.a proper
}

TEST_F(ClassifierTest, SetEqualityGrouping) {
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, xa_, z_)), RewriteForm::kGrouping);
  EXPECT_EQ(Classify(Bin(BinaryOp::kNe, xa_, z_)), RewriteForm::kGrouping);
}

TEST_F(ClassifierTest, UnrecognisedFormsAreConservative) {
  // z used in arithmetic-ish or doubly-occurring positions → grouping.
  EXPECT_EQ(Classify(Bin(BinaryOp::kEq, Bin(BinaryOp::kUnion, z_, xa_),
                         EmptySet())),
            RewriteForm::kGrouping);
  Expr w = Expr::Var("w", Type::Int());
  EXPECT_EQ(Classify(Expr::Must(Expr::Quantifier(
                QuantKind::kExists, "w", z_, Bin(BinaryOp::kIn, w, z_)))),
            RewriteForm::kGrouping);  // z occurs again inside the body
}

TEST_F(ClassifierTest, RuleStringsArePopulated) {
  Classify(Bin(BinaryOp::kIn, xb_, z_));
  EXPECT_NE(last_.rule.find("IN z"), std::string::npos) << last_.rule;
  Classify(Bin(BinaryOp::kEq, xb_, CountZ()));
  EXPECT_NE(last_.rule.find("count"), std::string::npos) << last_.rule;
}

TEST_F(ClassifierTest, RejectsNonSubplanMarker) {
  EXPECT_FALSE(ClassifyConjunct(Expr::True(), Expr::True(), "v").ok());
}

}  // namespace
}  // namespace tmdb
