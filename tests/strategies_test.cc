// The paper's central claims, as executable checks:
//
//  1. The nest-join strategy (and its flat-join specialisations) computes
//     exactly what naive nested-loop evaluation computes — on every query
//     class the paper discusses.
//  2. Kim's algorithm computes the *wrong* answer precisely when the
//     predicate between blocks holds on the empty subquery result and
//     dangling outer tuples exist (COUNT bug, SUBSETEQ bug).
//  3. The Ganski–Wong outerjoin repair agrees with naive evaluation.

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using testutil::RowsEqual;

std::vector<Value> MustRun(Database* db, const std::string& query,
                           Strategy strategy) {
  RunOptions options;
  options.strategy = strategy;
  auto result = db->Run(query, options);
  EXPECT_TRUE(result.ok()) << StrategyName(strategy) << ": "
                           << result.status().ToString();
  return result.ok() ? std::move(result)->rows : std::vector<Value>();
}

/// Asserts nestjoin/nestjoin-only/outerjoin all match naive on `query`.
void ExpectAllCorrectStrategiesAgree(Database* db, const std::string& query) {
  std::vector<Value> naive = MustRun(db, query, Strategy::kNaive);
  EXPECT_TRUE(RowsEqual(MustRun(db, query, Strategy::kNestJoin), naive))
      << "nestjoin diverged on: " << query;
  EXPECT_TRUE(RowsEqual(MustRun(db, query, Strategy::kNestJoinOnly), naive))
      << "nestjoin-only diverged on: " << query;
}

class CountBugTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CountBugConfig config;
    config.num_r = 60;
    config.num_s = 120;
    config.match_fraction = 0.6;  // plenty of dangling R rows
    TMDB_ASSERT_OK(LoadCountBugTables(&db_, config));
  }
  Database db_;
};

TEST_F(CountBugTest, CountQueryAllCorrectStrategiesAgree) {
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  EXPECT_TRUE(RowsEqual(MustRun(&db_, query, Strategy::kOuterJoin),
                        MustRun(&db_, query, Strategy::kNaive)));
}

TEST_F(CountBugTest, KimLosesExactlyTheDanglingZeroCountRows) {
  const std::string query =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  std::vector<Value> naive = MustRun(&db_, query, Strategy::kNaive);
  std::vector<Value> kim = MustRun(&db_, query, Strategy::kKim);

  // Kim's answer must be a subset of the correct one...
  for (const Value& row : kim) {
    bool found = false;
    for (const Value& n : naive) found = found || n.Equals(row);
    EXPECT_TRUE(found) << "Kim produced a spurious row: " << row.ToString();
  }
  // ...and the missing rows are exactly those with b = 0 and an empty
  // subquery result (dangling on c). The generator guarantees some exist.
  ASSERT_LT(kim.size(), naive.size())
      << "workload produced no dangling b=0 rows; COUNT bug not exercised";
  for (const Value& row : naive) {
    bool in_kim = false;
    for (const Value& k : kim) in_kim = in_kim || k.Equals(row);
    if (!in_kim) {
      TMDB_ASSERT_OK_AND_ASSIGN(Value b, row.Field("b"));
      EXPECT_EQ(b.AsInt(), 0)
          << "Kim lost a non-dangling row: " << row.ToString();
    }
  }
}

TEST_F(CountBugTest, NonZeroCountComparisonsKimIsCorrect) {
  // For b > 0 the empty subquery result never satisfies the predicate, so
  // Kim's transformation is actually correct — pin that boundary too.
  const std::string query =
      "SELECT x FROM R x WHERE x.b > 0 AND x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";
  EXPECT_TRUE(RowsEqual(MustRun(&db_, query, Strategy::kKim),
                        MustRun(&db_, query, Strategy::kNaive)));
}

class SubsetBugTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SubsetBugConfig config;
    config.num_x = 60;
    config.num_y = 120;
    TMDB_ASSERT_OK(LoadSubsetBugTables(&db_, config));
  }
  Database db_;
};

TEST_F(SubsetBugTest, SubsetEqQueryAllCorrectStrategiesAgree) {
  // The paper's Section 4 example: x.a ⊆ (SELECT y.a FROM Y y WHERE
  // x.b = y.b) — grouping required, SUBSETEQ bug for Kim.
  const std::string query =
      "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  EXPECT_TRUE(RowsEqual(MustRun(&db_, query, Strategy::kOuterJoin),
                        MustRun(&db_, query, Strategy::kNaive)));
}

TEST_F(SubsetBugTest, KimSuffersSubsetEqBug) {
  const std::string query =
      "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)";
  std::vector<Value> naive = MustRun(&db_, query, Strategy::kNaive);
  std::vector<Value> kim = MustRun(&db_, query, Strategy::kKim);
  ASSERT_LT(kim.size(), naive.size());
  // Missing rows must all have a = ∅ (the only sets ⊆ ∅).
  for (const Value& row : naive) {
    bool in_kim = false;
    for (const Value& k : kim) in_kim = in_kim || k.Equals(row);
    if (!in_kim) {
      TMDB_ASSERT_OK_AND_ASSIGN(Value a, row.Field("a"));
      EXPECT_EQ(a.NumElements(), 0u)
          << "Kim lost a row with non-empty a: " << row.ToString();
    }
  }
}

class FlatJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SubsetBugConfig config;
    config.num_x = 50;
    config.num_y = 100;
    TMDB_ASSERT_OK(LoadSubsetBugTables(&db_, config));
  }
  Database db_;
};

TEST_F(FlatJoinTest, MembershipRewritesToSemiJoin) {
  const std::string query =
      "SELECT x.b FROM X x WHERE 3 IN (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  // And the plan really contains a semijoin, not a nest join.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  EXPECT_NE(plan->ToString().find("SemiJoin"), std::string::npos)
      << plan->ToString();
  EXPECT_EQ(plan->ToString().find("NestJoin"), std::string::npos)
      << plan->ToString();
}

TEST_F(FlatJoinTest, NotInRewritesToAntiJoin) {
  const std::string query =
      "SELECT x.b FROM X x WHERE 3 NOT IN (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  EXPECT_NE(plan->ToString().find("AntiJoin"), std::string::npos)
      << plan->ToString();
}

TEST_F(FlatJoinTest, EmptinessTestRewritesToAntiJoin) {
  const std::string query =
      "SELECT x.b FROM X x WHERE count(SELECT y.a FROM Y y "
      "WHERE x.b = y.b) = 0";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  EXPECT_NE(plan->ToString().find("AntiJoin"), std::string::npos)
      << plan->ToString();
}

TEST_F(FlatJoinTest, SupersetRewritesToAntiJoin) {
  // x.a ⊇ z  ==>  ¬∃v∈z (v ∉ x.a).
  const std::string query =
      "SELECT x.b FROM X x WHERE x.a SUPSETEQ (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  EXPECT_NE(plan->ToString().find("AntiJoin"), std::string::npos)
      << plan->ToString();
}

TEST_F(FlatJoinTest, ExistsQuantifierRewritesToSemiJoin) {
  const std::string query =
      "SELECT x.b FROM X x WHERE EXISTS v IN (SELECT y.a FROM Y y "
      "WHERE x.b = y.b) (v > 3)";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  EXPECT_NE(plan->ToString().find("SemiJoin"), std::string::npos)
      << plan->ToString();
}

TEST_F(FlatJoinTest, ForAllQuantifierRewritesToAntiJoin) {
  const std::string query =
      "SELECT x.b FROM X x WHERE FORALL v IN (SELECT y.a FROM Y y "
      "WHERE x.b = y.b) (v > 3)";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  EXPECT_NE(plan->ToString().find("AntiJoin"), std::string::npos)
      << plan->ToString();
}

class Section8Test : public ::testing::Test {
 protected:
  void SetUp() override {
    Section8Config config;
    config.num_x = 30;
    config.num_y = 60;
    config.num_z = 90;
    TMDB_ASSERT_OK(LoadSection8Tables(&db_, config));
  }
  Database db_;
};

TEST_F(Section8Test, ThreeBlockSubsetQueryNestJoinPipeline) {
  // The paper's Section 8 query: both predicates need grouping → two nest
  // joins stacked exactly as steps (1)–(4) describe.
  const std::string query =
      "SELECT x FROM X x WHERE x.a SUBSETEQ ("
      "  SELECT y.a FROM Y y WHERE x.b = y.b AND y.c SUBSETEQ ("
      "    SELECT z.c FROM Z z WHERE y.d = z.d))";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  const std::string rendered = plan->ToString();
  size_t first = rendered.find("NestJoin");
  ASSERT_NE(first, std::string::npos) << rendered;
  EXPECT_NE(rendered.find("NestJoin", first + 1), std::string::npos)
      << "expected two nest joins:\n"
      << rendered;
}

TEST_F(Section8Test, ThreeBlockMembershipVariantUsesFlatJoins) {
  // The paper's variant: ⊆ → ∈ / ∉ turns the nest joins into a semijoin
  // and an antijoin.
  const std::string query =
      "SELECT x FROM X x WHERE 2 IN ("
      "  SELECT y.a FROM Y y WHERE x.b = y.b AND 3 NOT IN ("
      "    SELECT z.c FROM Z z WHERE y.d = z.d))";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("SemiJoin"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("AntiJoin"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("NestJoin"), std::string::npos) << rendered;
}

class CompanyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CompanyConfig config;
    TMDB_ASSERT_OK(LoadCompanyTables(&db_, config));
  }
  Database db_;
};

TEST_F(CompanyTest, Q2SelectClauseNestingMatchesNaive) {
  // Paper query Q2: departments with the employees living in the same
  // city — SELECT-clause nesting → nest join.
  const std::string query =
      "SELECT (dname = d.dname, emps = SELECT e.name FROM EMP e "
      "WHERE e.address.city = d.address.city) FROM DEPT d";
  ExpectAllCorrectStrategiesAgree(&db_, query);
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            db_.Plan(query, Strategy::kNestJoin));
  EXPECT_NE(plan->ToString().find("NestJoin"), std::string::npos)
      << plan->ToString();
}

TEST_F(CompanyTest, Q1SetValuedOperandStaysNaive) {
  // Paper query Q1 iterates d.emps — a set-valued attribute. The paper:
  // "there is no use to flatten" such queries; the plan must keep the
  // subquery naive.
  const std::string query =
      "SELECT d.dname FROM DEPT d WHERE "
      "d.address.city IN (SELECT e FROM d.emps e)";
  // (Simplified Q1: emps here are names; membership over the set.)
  std::vector<Value> naive = MustRun(&db_, query, Strategy::kNaive);
  std::vector<Value> nest = MustRun(&db_, query, Strategy::kNestJoin);
  EXPECT_TRUE(RowsEqual(nest, naive));
}

}  // namespace
}  // namespace tmdb
