// Unnester tests: plan shapes, the rewrite report, the flat-join ablation
// switch, naive fallbacks, and expression-rewrite helpers.

#include "rewrite/unnester.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "parser/parser.h"
#include "rewrite/expr_rewrite.h"
#include "sema/binder.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

class UnnesterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        auto x,
        db_.CreateTable("X", Type::Tuple({{"a", Type::Set(Type::Int())},
                                          {"b", Type::Int()},
                                          {"c", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        auto y, db_.CreateTable("Y", Type::Tuple({{"a", Type::Int()},
                                                  {"b", Type::Int()}})));
    (void)x;
    (void)y;
  }

  LogicalOpPtr NaivePlan(const std::string& query) {
    auto ast = ParseQuery(query);
    EXPECT_TRUE(ast.ok()) << ast.status().ToString();
    Binder binder(db_.catalog());
    auto plan = binder.BindQuery(**ast);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(plan).value() : nullptr;
  }

  Database db_;
};

TEST_F(UnnesterTest, SemiJoinShape) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.c IN "
          "(SELECT y.a FROM Y y WHERE x.b = y.b)")));
  // Map over SemiJoin over (Scan, Scan): no residual Select, no subplans.
  ASSERT_EQ(plan->op_kind(), OpKind::kMap);
  ASSERT_EQ(plan->input()->op_kind(), OpKind::kSemiJoin);
  EXPECT_EQ(plan->input()->left()->op_kind(), OpKind::kScan);
  EXPECT_EQ(plan->input()->right()->op_kind(), OpKind::kScan);
  EXPECT_EQ(plan->ToString().find("SUBQUERY"), std::string::npos)
      << plan->ToString();
}

TEST_F(UnnesterTest, NestJoinShapeWithStrip) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.a SUBSETEQ "
          "(SELECT y.a FROM Y y WHERE x.b = y.b)")));
  // Map(F) over Map(strip) over Select(P against label) over NestJoin.
  ASSERT_EQ(plan->op_kind(), OpKind::kMap);
  ASSERT_EQ(plan->input()->op_kind(), OpKind::kMap);
  ASSERT_EQ(plan->input()->input()->op_kind(), OpKind::kSelect);
  ASSERT_EQ(plan->input()->input()->input()->op_kind(), OpKind::kNestJoin);
  // The grouped label is gone from the final schema.
  EXPECT_TRUE(plan->input()->output_type().Equals(
      db_.catalog()->GetTable("X").value()->schema()));
}

TEST_F(UnnesterTest, LocalConjunctsPushIntoInnerSource) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.c IN "
          "(SELECT y.a FROM Y y WHERE x.b = y.b AND y.a > 2)")));
  // y.a > 2 is x-free: it must end up in a Select *under* the semijoin.
  const LogicalOpPtr& semi = plan->input();
  ASSERT_EQ(semi->op_kind(), OpKind::kSemiJoin);
  ASSERT_EQ(semi->right()->op_kind(), OpKind::kSelect);
  EXPECT_NE(semi->right()->pred().ToString().find("y.a > 2"),
            std::string::npos);
}

TEST_F(UnnesterTest, PlainConjunctsPushBelowJoins) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.c > 5 AND x.c IN "
          "(SELECT y.a FROM Y y WHERE x.b = y.b)")));
  const LogicalOpPtr& semi = plan->input();
  ASSERT_EQ(semi->op_kind(), OpKind::kSemiJoin);
  ASSERT_EQ(semi->left()->op_kind(), OpKind::kSelect);
  EXPECT_NE(semi->left()->pred().ToString().find("x.c > 5"),
            std::string::npos);
}

TEST_F(UnnesterTest, AblationDisablesFlatJoins) {
  UnnestOptions options;
  options.use_flat_joins = false;
  Unnester unnester(options);
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.c IN "
          "(SELECT y.a FROM Y y WHERE x.b = y.b)")));
  EXPECT_NE(plan->ToString().find("NestJoin"), std::string::npos)
      << plan->ToString();
  EXPECT_EQ(plan->ToString().find("SemiJoin"), std::string::npos);
}

TEST_F(UnnesterTest, ReportRecordsRuleAndTarget) {
  Unnester unnester;
  TMDB_ASSERT_OK(unnester
                     .Rewrite(NaivePlan(
                         "SELECT x.c FROM X x WHERE x.c NOT IN "
                         "(SELECT y.a FROM Y y WHERE x.b = y.b)"))
                     .status());
  ASSERT_EQ(unnester.report().events.size(), 1u);
  const UnnestEvent& event = unnester.report().events[0];
  EXPECT_EQ(event.form, RewriteForm::kNotExists);
  EXPECT_EQ(event.target, "AntiJoin");
  EXPECT_NE(event.rule.find("NOT IN"), std::string::npos);
  EXPECT_NE(unnester.report().ToString().find("AntiJoin"),
            std::string::npos);
}

TEST_F(UnnesterTest, UncorrelatedSubqueryStaysNaive) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.c IN (SELECT y.a FROM Y y)")));
  EXPECT_NE(plan->ToString().find("SUBQUERY"), std::string::npos);
  ASSERT_EQ(unnester.report().events.size(), 1u);
  EXPECT_EQ(unnester.report().events[0].target, "naive");
}

TEST_F(UnnesterTest, SetValuedOperandStaysNaive) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.c IN (SELECT e FROM x.a e)")));
  EXPECT_NE(plan->ToString().find("SUBQUERY"), std::string::npos);
  ASSERT_EQ(unnester.report().events.size(), 1u);
  EXPECT_EQ(unnester.report().events[0].target, "naive");
}

TEST_F(UnnesterTest, SelectClauseNestingBecomesNestJoin) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT (c = x.c, zs = SELECT y.a FROM Y y WHERE x.b = y.b) "
          "FROM X x")));
  ASSERT_EQ(plan->op_kind(), OpKind::kMap);
  EXPECT_EQ(plan->input()->op_kind(), OpKind::kNestJoin);
  EXPECT_EQ(plan->ToString().find("SUBQUERY"), std::string::npos);
}

TEST_F(UnnesterTest, UnnestSpecialCaseBecomesFlatJoin) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "UNNEST(SELECT (SELECT (c = x.c, a = y.a) FROM Y y "
          "WHERE x.b = y.b) FROM X x)")));
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Join"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("NestJoin"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("SUBQUERY"), std::string::npos) << rendered;
}

TEST_F(UnnesterTest, MultipleSubqueriesInOneConjunctStackNestJoins) {
  // Beyond the paper: count(z1) = count(z2) gets one nest join per
  // subquery and a single residual select over both grouped attributes.
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE "
          "count(SELECT y.a FROM Y y WHERE x.b = y.b) = "
          "count(SELECT y2.a FROM Y y2 WHERE x.c = y2.a)")));
  const std::string rendered = plan->ToString();
  size_t first = rendered.find("NestJoin");
  ASSERT_NE(first, std::string::npos) << rendered;
  EXPECT_NE(rendered.find("NestJoin", first + 1), std::string::npos)
      << rendered;
  EXPECT_EQ(rendered.find("SUBQUERY"), std::string::npos) << rendered;
}

TEST_F(UnnesterTest, DisjunctionWithSubqueryGroups) {
  // An OR containing a subquery cannot flatten to a semijoin, but the
  // nest join evaluates it exactly (the grouped attribute is available to
  // the whole conjunct).
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.c > 3 OR x.c IN "
          "(SELECT y.a FROM Y y WHERE x.b = y.b)")));
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("NestJoin"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("SUBQUERY"), std::string::npos) << rendered;
}

TEST_F(UnnesterTest, MultiLevelProducesStackedJoins) {
  Unnester unnester;
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr plan,
      unnester.Rewrite(NaivePlan(
          "SELECT x.c FROM X x WHERE x.a SUBSETEQ ("
          "SELECT y.a FROM Y y WHERE x.b = y.b AND y.a IN ("
          "SELECT y2.a FROM Y y2 WHERE y.b = y2.b))")));
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("NestJoin"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("SemiJoin"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("SUBQUERY"), std::string::npos) << rendered;
}

// ------------------------------------------------------ expr_rewrite

TEST(ExprRewriteTest, SplitConjunctsFlattensAnds) {
  Expr a = Expr::Must(Expr::Binary(BinaryOp::kGt,
                                   Expr::Literal(Value::Int(1)),
                                   Expr::Literal(Value::Int(0))));
  Expr nested = Expr::And(Expr::And(a, a), a);
  EXPECT_EQ(SplitConjuncts(nested).size(), 3u);
  EXPECT_TRUE(SplitConjuncts(Expr::True()).empty());
}

TEST(ExprRewriteTest, RebuildRetypesVariables) {
  Type narrow = Type::Tuple({{"a", Type::Int()}});
  Type wide = Type::Tuple({{"a", Type::Int()}, {"extra", Type::Int()}});
  Expr e = Expr::Must(Expr::Field(Expr::Var("x", narrow), "a"));
  ExprRebindings rebindings;
  rebindings.var_types.emplace("x", wide);
  TMDB_ASSERT_OK_AND_ASSIGN(Expr rebuilt, RebuildExpr(e, rebindings));
  EXPECT_TRUE(rebuilt.field_base().type().Equals(wide));
}

TEST(ExprRewriteTest, RebuildReplacesWholeVariables) {
  Type row = Type::Tuple({{"a", Type::Int()}});
  Expr e = Expr::Must(Expr::Field(Expr::Var("x", row), "a"));
  ExprRebindings rebindings;
  rebindings.var_replacements.emplace(
      "x", Expr::Must(Expr::MakeTuple({"a"}, {Expr::Literal(Value::Int(9))})));
  TMDB_ASSERT_OK_AND_ASSIGN(Expr rebuilt, RebuildExpr(e, rebindings));
  // Field-of-ctor collapses to the literal.
  EXPECT_TRUE(rebuilt.is_literal());
  EXPECT_EQ(rebuilt.literal_value().AsInt(), 9);
}

TEST(ExprRewriteTest, RebuildQuantifierShadowing) {
  Type row = Type::Tuple({{"a", Type::Set(Type::Int())}});
  Expr x = Expr::Var("x", row);
  Expr body = Expr::Must(Expr::Binary(BinaryOp::kGt,
                                      Expr::Var("x", Type::Int()),
                                      Expr::Literal(Value::Int(0))));
  Expr q = Expr::Must(Expr::Quantifier(QuantKind::kExists, "x",
                                       Expr::Must(Expr::Field(x, "a")), body));
  ExprRebindings rebindings;
  rebindings.var_replacements.emplace("x", x);  // identity, but shadow-safe
  TMDB_ASSERT_OK_AND_ASSIGN(Expr rebuilt, RebuildExpr(q, rebindings));
  // The bound body x stays an INT var reference, not the tuple.
  EXPECT_TRUE(rebuilt.quant_pred().lhs().type().is_int());
}

}  // namespace
}  // namespace tmdb
