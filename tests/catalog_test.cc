#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntRow;

TEST(TableTest, CreateValidation) {
  EXPECT_FALSE(Table::Create("", Type::Tuple({})).ok());
  EXPECT_FALSE(Table::Create("T", Type::Int()).ok());
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto t, Table::Create("T", Type::Tuple({{"a", Type::Int()}})));
  EXPECT_EQ(t->name(), "T");
  EXPECT_EQ(t->NumRows(), 0u);
}

TEST(TableTest, InsertValidatesSchema) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto t, Table::Create("T", Type::Tuple({{"a", Type::Int()},
                                              {"b", Type::String()}})));
  TMDB_ASSERT_OK(t->Insert(
      Value::Tuple({"a", "b"}, {Value::Int(1), Value::String("x")})));
  // Wrong field type.
  EXPECT_FALSE(
      t->Insert(Value::Tuple({"a", "b"}, {Value::String("no"),
                                          Value::String("x")}))
          .ok());
  // Wrong shape.
  EXPECT_FALSE(t->Insert(Value::Int(1)).ok());
  EXPECT_EQ(t->NumRows(), 1u);
}

TEST(TableTest, ExtensionsAreSets) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto t, Table::Create("T", Type::Tuple({{"a", Type::Int()}})));
  TMDB_ASSERT_OK(t->Insert(IntRow({"a"}, {1})));
  Status dup = t->Insert(IntRow({"a"}, {1}));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t->NumRows(), 1u);
}

TEST(TableTest, NestedAttributeValidation) {
  const Type schema = Type::Tuple(
      {{"name", Type::String()},
       {"kids", Type::Set(Type::Tuple({{"age", Type::Int()}}))}});
  TMDB_ASSERT_OK_AND_ASSIGN(auto t, Table::Create("E", schema));
  TMDB_ASSERT_OK(t->Insert(Value::Tuple(
      {"name", "kids"},
      {Value::String("e1"),
       Value::Set({Value::Tuple({"age"}, {Value::Int(4)})})})));
  // Element of the set has wrong shape.
  EXPECT_FALSE(t->Insert(Value::Tuple(
                             {"name", "kids"},
                             {Value::String("e2"),
                              Value::Set({Value::Int(4)})}))
                   .ok());
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog catalog;
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto t, catalog.CreateTable("R", Type::Tuple({{"a", Type::Int()}})));
  EXPECT_TRUE(catalog.HasTable("R"));
  EXPECT_FALSE(catalog.HasTable("S"));
  TMDB_ASSERT_OK_AND_ASSIGN(auto got, catalog.GetTable("R"));
  EXPECT_EQ(got.get(), t.get());
  EXPECT_FALSE(catalog.GetTable("S").ok());
  EXPECT_FALSE(
      catalog.CreateTable("R", Type::Tuple({{"a", Type::Int()}})).ok());
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"R"});
}

TEST(CatalogTest, RegisterTable) {
  Catalog catalog;
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto t, Table::Create("X", Type::Tuple({{"a", Type::Int()}})));
  TMDB_ASSERT_OK(catalog.RegisterTable(t));
  EXPECT_FALSE(catalog.RegisterTable(t).ok());  // duplicate
  EXPECT_FALSE(catalog.RegisterTable(nullptr).ok());
}

TEST(CatalogTest, Sorts) {
  Catalog catalog;
  const Type address = Type::Tuple({{"city", Type::String()}});
  TMDB_ASSERT_OK(catalog.DefineSort("Address", address));
  EXPECT_FALSE(catalog.DefineSort("Address", address).ok());
  EXPECT_FALSE(catalog.DefineSort("Bad", Type::Int()).ok());
  TMDB_ASSERT_OK_AND_ASSIGN(Type got, catalog.GetSort("Address"));
  EXPECT_TRUE(got.Equals(address));
  EXPECT_FALSE(catalog.GetSort("Nope").ok());
}

}  // namespace
}  // namespace tmdb
