// Differential execution: one query, one dataset, every execution
// configuration must produce the same rows. The matrix crosses
//  - strategy: naive correlated evaluation (the ground truth) against the
//    Ganski–Wong outerjoin and the paper's nest-join strategies;
//  - memory: unbudgeted against a budget small enough to force the spill
//    paths (hash-partition spill, external sort, ν spill, cache overflow);
//  - parallelism: serial against a 4-thread pool;
//  - join implementation: hash against sort-merge.
// Spilling, threading, and join choice are execution details — none of them
// may change a single row. Serial runs are additionally checked for
// determinism: repeating one reproduces rows bit for bit and the
// deterministic stats exactly.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

namespace fs = std::filesystem;

using testutil::RowsEqual;

std::string MakeSpillBase(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("tmdb-test-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

::testing::AssertionResult SpillBaseEmpty(const std::string& base) {
  if (!fs::exists(base)) return ::testing::AssertionSuccess();
  for (const auto& entry : fs::directory_iterator(base)) {
    return ::testing::AssertionFailure()
           << "leaked spill artefact: " << entry.path().string();
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitIdentical(const std::vector<Value>& actual,
                                        const std::vector<Value>& expected) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << actual.size() << " vs "
           << expected.size();
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    if (!actual[i].Equals(expected[i])) {
      return ::testing::AssertionFailure()
             << "row " << i << " differs: " << actual[i].ToString() << " vs "
             << expected[i].ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

/// COUNT-bug workload sized so that a 256 KiB budget forces every
/// materialising operator to disk (the S build side is ~3 MiB) while the
/// sparse key domain keeps the result — and the outerjoin strategy's
/// irreducible flat output — far below the budget.
class DifferentialExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CountBugConfig config;
    config.num_r = 100;
    config.num_s = 12000;
    config.match_fraction = 0.5;  // half the R rows dangle: the bug trigger
    config.domain_scale = 256;
    TMDB_ASSERT_OK(LoadCountBugTables(&db_, config));
  }

  static constexpr const char* kQuery =
      "SELECT x FROM R x WHERE x.b = count(SELECT y.d FROM S y "
      "WHERE x.c = y.c)";

  /// Budget for the spilling cells. Overridable so scripts/tier1.sh can
  /// sweep the whole matrix across several low-memory settings; any value
  /// between the hash join's skew bound and the ~3 MiB working set keeps
  /// every cell green while changing where and how often operators spill.
  static uint64_t Budget() {
    if (const char* env = std::getenv("TMDB_DIFF_BUDGET_BYTES")) {
      return std::strtoull(env, nullptr, 10);
    }
    return 256 << 10;
  }

  static RunOptions Opts(Strategy strategy, int threads, bool spill,
                         const std::string& dir) {
    RunOptions o;
    o.strategy = strategy;
    o.num_threads = threads;
    if (spill) {
      o.memory_budget_bytes = Budget();
      o.enable_spill = true;
      o.spill_dir = dir;
      o.spill_block_bytes = 4096;
    }
    return o;
  }

  Database db_;
};

TEST_F(DifferentialExecTest, StrategySpillThreadMatrixAgrees) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      QueryResult reference,
      db_.Run(kQuery, Opts(Strategy::kNaive, 1, false, "")));
  ASSERT_GT(reference.rows.size(), 0u);

  for (Strategy strategy : {Strategy::kNaive, Strategy::kOuterJoin,
                            Strategy::kNestJoin, Strategy::kNestJoinOnly,
                            Strategy::kAuto}) {
    for (int threads : {1, 4}) {
      for (bool spill : {false, true}) {
        SCOPED_TRACE(StrategyName(strategy) + "/threads=" +
                     std::to_string(threads) +
                     (spill ? "/spill" : "/in-memory"));
        const std::string base =
            spill ? MakeSpillBase("diff-" + StrategyName(strategy) + "-t" +
                                  std::to_string(threads))
                  : "";
        TMDB_ASSERT_OK_AND_ASSIGN(
            QueryResult run, db_.Run(kQuery, Opts(strategy, threads, spill,
                                                  base)));
        EXPECT_TRUE(RowsEqual(run.rows, reference.rows));
        if (strategy == Strategy::kAuto) {
          // Auto must resolve to a concrete strategy and report it.
          EXPECT_TRUE(run.auto_strategy);
          EXPECT_NE(run.strategy, Strategy::kAuto);
          EXPECT_EQ(run.stats.strategy_chosen, StrategyStatCode(run.strategy));
        }
        if (spill) {
          // The unnested strategies all materialise more than the budget;
          // naive evaluation holds no large state, so only require that
          // the budgeted run visibly engaged disk for the former. For auto
          // the check keys off the strategy it resolved to.
          if (run.strategy != Strategy::kNaive) {
            EXPECT_GT(run.stats.spill_partitions + run.stats.spill_sort_runs,
                      0u)
                << "budget never engaged the spill path: "
                << run.stats.ToString();
          }
          EXPECT_TRUE(SpillBaseEmpty(base));
          fs::remove_all(base);
        }
      }
    }
  }
}

TEST_F(DifferentialExecTest, AutoMatchesItsResolvedForcedStrategy) {
  // Whatever auto picks, its rows and deterministic work counters must be
  // bit-identical to forcing that same strategy — the cost model may only
  // choose between behaviours that already exist, never invent a new one.
  // (The planning phase's sampling checkpoints are the one legitimate
  // delta, so guard_checkpoints is compared with >=.)
  RunOptions auto_opts = Opts(Strategy::kAuto, 1, false, "");
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult auto_run, db_.Run(kQuery, auto_opts));
  ASSERT_NE(auto_run.strategy, Strategy::kAuto);
  TMDB_ASSERT_OK_AND_ASSIGN(
      QueryResult forced,
      db_.Run(kQuery, Opts(auto_run.strategy, 1, false, "")));
  EXPECT_TRUE(BitIdentical(auto_run.rows, forced.rows));
  EXPECT_EQ(auto_run.stats.rows_emitted, forced.stats.rows_emitted);
  EXPECT_EQ(auto_run.stats.subplan_evals, forced.stats.subplan_evals);
  EXPECT_EQ(auto_run.stats.predicate_evals, forced.stats.predicate_evals);
  EXPECT_GE(auto_run.stats.guard_checkpoints, forced.stats.guard_checkpoints);
}

TEST_F(DifferentialExecTest, AutoNeverExceedsWorstForcedStrategy) {
  // Without a mid-query switch (none fires on this workload), auto's row
  // and checkpoint counts are those of one forced strategy plus the
  // sampling checkpoints — never more than the worst forced strategy pays.
  uint64_t worst_rows = 0;
  uint64_t worst_checkpoints = 0;
  for (Strategy strategy : {Strategy::kNaive, Strategy::kOuterJoin,
                            Strategy::kNestJoin, Strategy::kNestJoinOnly}) {
    TMDB_ASSERT_OK_AND_ASSIGN(
        QueryResult run, db_.Run(kQuery, Opts(strategy, 1, false, "")));
    const uint64_t rows = run.stats.rows_emitted + run.stats.rows_built;
    if (rows > worst_rows) worst_rows = rows;
    if (run.stats.guard_checkpoints > worst_checkpoints) {
      worst_checkpoints = run.stats.guard_checkpoints;
    }
  }
  TMDB_ASSERT_OK_AND_ASSIGN(
      QueryResult auto_run,
      db_.Run(kQuery, Opts(Strategy::kAuto, 1, false, "")));
  EXPECT_EQ(auto_run.stats.strategy_switches, 0u);
  EXPECT_LE(auto_run.stats.rows_emitted + auto_run.stats.rows_built,
            worst_rows);
  EXPECT_LE(auto_run.stats.guard_checkpoints, worst_checkpoints)
      << "sampling checkpoints pushed auto past the worst forced strategy";
}

TEST_F(DifferentialExecTest, JoinImplementationsAgreeUnderSpill) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      QueryResult reference,
      db_.Run(kQuery, Opts(Strategy::kNaive, 1, false, "")));

  for (JoinImpl impl : {JoinImpl::kHash, JoinImpl::kMerge}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(impl == JoinImpl::kHash ? "hash" : "merge") +
                   "/threads=" + std::to_string(threads));
      const std::string base = MakeSpillBase(
          std::string("diff-impl-") +
          (impl == JoinImpl::kHash ? "hash" : "merge") + "-t" +
          std::to_string(threads));
      RunOptions opts = Opts(Strategy::kNestJoin, threads, true, base);
      opts.join_impl = impl;
      TMDB_ASSERT_OK_AND_ASSIGN(QueryResult run, db_.Run(kQuery, opts));
      EXPECT_TRUE(RowsEqual(run.rows, reference.rows));
      if (impl == JoinImpl::kMerge) {
        EXPECT_GT(run.stats.spill_sort_runs, 0u)
            << "merge join never external-sorted: " << run.stats.ToString();
      } else {
        EXPECT_GT(run.stats.spill_partitions, 0u)
            << "hash join never partition-spilled: " << run.stats.ToString();
      }
      EXPECT_TRUE(SpillBaseEmpty(base));
      fs::remove_all(base);
    }
  }
}

TEST_F(DifferentialExecTest, SerialRunsAreDeterministic) {
  // Serial in-memory runs repeat with identical rows AND identical
  // deterministic stats; serial spilled runs repeat rows bit for bit (spill
  // volume counters may vary with live memory readings and are exempt).
  RunOptions plain = Opts(Strategy::kNestJoin, 1, false, "");
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult first, db_.Run(kQuery, plain));
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult second, db_.Run(kQuery, plain));
  EXPECT_TRUE(BitIdentical(second.rows, first.rows));
  EXPECT_EQ(second.stats.rows_emitted, first.stats.rows_emitted);
  EXPECT_EQ(second.stats.subplan_evals, first.stats.subplan_evals);

  const std::string base = MakeSpillBase("diff-determinism");
  RunOptions spilled = Opts(Strategy::kNestJoin, 1, true, base);
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult third, db_.Run(kQuery, spilled));
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult fourth, db_.Run(kQuery, spilled));
  EXPECT_TRUE(BitIdentical(fourth.rows, third.rows));
  EXPECT_TRUE(BitIdentical(third.rows, first.rows));
  EXPECT_TRUE(SpillBaseEmpty(base));
  fs::remove_all(base);
}

/// The correlated-subquery workload the cache tests use, swept across cache
/// configurations: memoization on, off, and thrashing through the
/// disk-overflow path — with and without threads — may never change rows.
class DifferentialCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorrelatedConfig config;
    config.num_outer = 200;
    config.num_inner = 60;
    config.correlation_scale = 10;
    TMDB_ASSERT_OK(LoadCorrelatedTables(&db_, config));
  }

  static constexpr const char* kCorrelated =
      "SELECT (a = o.a, n = count(SELECT i.v FROM I i WHERE o.k = i.k)) "
      "FROM O o";

  Database db_;
};

TEST_F(DifferentialCacheTest, CacheConfigurationsAgree) {
  RunOptions reference_opts;
  reference_opts.strategy = Strategy::kNaive;
  reference_opts.subplan_cache_bytes = 0;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                            db_.Run(kCorrelated, reference_opts));

  struct Config {
    const char* name;
    uint64_t cache_bytes;
    bool spill;
  };
  const Config configs[] = {{"cached", 16ull << 20, false},
                            {"uncached", 0, false},
                            {"thrash", 1, false},
                            {"thrash-overflow", 1, true}};
  for (const Config& config : configs) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(config.name) + "/threads=" +
                   std::to_string(threads));
      const std::string base =
          config.spill ? MakeSpillBase(std::string("diff-cache-") +
                                       config.name + "-t" +
                                       std::to_string(threads))
                       : "";
      RunOptions opts;
      opts.strategy = Strategy::kNaive;
      opts.subplan_cache_bytes = config.cache_bytes;
      opts.num_threads = threads;
      if (config.spill) {
        opts.enable_spill = true;
        opts.spill_dir = base;
        opts.spill_block_bytes = 4096;
      }
      TMDB_ASSERT_OK_AND_ASSIGN(QueryResult run, db_.Run(kCorrelated, opts));
      EXPECT_TRUE(RowsEqual(run.rows, reference.rows));
      if (config.spill) {
        EXPECT_GT(run.stats.subplan_cache_disk_evictions, 0u)
            << "soft cap never overflowed to disk: " << run.stats.ToString();
        EXPECT_EQ(run.stats.subplan_evals, 10u)
            << "disk overflow lost exactly-once: " << run.stats.ToString();
        EXPECT_TRUE(SpillBaseEmpty(base));
        fs::remove_all(base);
      }
    }
  }
}

TEST_F(DifferentialCacheTest, AutoAgreesAcrossCacheConfigurations) {
  // strategy = auto across the same cache sweep: a healthy cache, no cache
  // (the cost model then never picks naive), and a 1-byte thrashing cache
  // that may trigger the adaptive switch. Rows must match the uncached
  // naive reference in every cell.
  RunOptions reference_opts;
  reference_opts.strategy = Strategy::kNaive;
  reference_opts.subplan_cache_bytes = 0;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                            db_.Run(kCorrelated, reference_opts));

  for (uint64_t cache_bytes : {16ull << 20, 0ull, 1ull}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE("cache=" + std::to_string(cache_bytes) +
                   "/threads=" + std::to_string(threads));
      RunOptions opts;
      opts.strategy = Strategy::kAuto;
      opts.subplan_cache_bytes = cache_bytes;
      opts.num_threads = threads;
      TMDB_ASSERT_OK_AND_ASSIGN(QueryResult run, db_.Run(kCorrelated, opts));
      EXPECT_TRUE(RowsEqual(run.rows, reference.rows));
      EXPECT_TRUE(run.auto_strategy);
      EXPECT_NE(run.strategy, Strategy::kAuto);
      if (cache_bytes == 0) {
        EXPECT_NE(run.strategy, Strategy::kNaive)
            << "memoization off must rule out naive";
      }
    }
  }
}

TEST_F(DifferentialCacheTest, AutoSwitchUnderThreadsAgrees) {
  // 1000 outer rows over 10 correlation values: the model picks memoized
  // naive, and a 1-byte cache makes every acquire miss, so the adaptive
  // switch fires (deterministically in serial; under threads the unwind
  // interleaves but the re-planned rows must still match). Fresh database:
  // the fixture's 200-row workload sits on the naive/nest-join cost knife
  // edge, this one does not.
  Database db;
  CorrelatedConfig config;
  config.num_outer = 1000;
  config.num_inner = 60;
  config.correlation_scale = 10;
  TMDB_ASSERT_OK(LoadCorrelatedTables(&db, config));

  RunOptions reference_opts;
  reference_opts.strategy = Strategy::kNaive;
  reference_opts.subplan_cache_bytes = 0;
  TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                            db.Run(kCorrelated, reference_opts));

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RunOptions opts;
    opts.strategy = Strategy::kAuto;
    opts.subplan_cache_bytes = 1;
    opts.num_threads = threads;
    TMDB_ASSERT_OK_AND_ASSIGN(QueryResult run, db.Run(kCorrelated, opts));
    EXPECT_TRUE(RowsEqual(run.rows, reference.rows));
    if (threads == 1) {
      // Serial acquire order is fixed: the switch fires at exactly the
      // 64th probe, every time.
      EXPECT_EQ(run.stats.strategy_switches, 1u) << run.stats.ToString();
      EXPECT_NE(run.strategy, Strategy::kNaive);
    }
  }
}

}  // namespace
}  // namespace tmdb
