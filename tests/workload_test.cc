// Workload generator tests: determinism across runs, schema conformance,
// and the structural properties the experiments rely on (dangling rows,
// empty sets, correlation matches).

#include "workload/generators.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tmdb {
namespace {

TEST(GeneratorTest, CountBugDeterministicAndDangling) {
  CountBugConfig config;
  config.num_r = 100;
  config.num_s = 200;
  config.seed = 5;

  Database a;
  Database b;
  TMDB_ASSERT_OK(LoadCountBugTables(&a, config));
  TMDB_ASSERT_OK(LoadCountBugTables(&b, config));
  TMDB_ASSERT_OK_AND_ASSIGN(auto ra, a.catalog()->GetTable("R"));
  TMDB_ASSERT_OK_AND_ASSIGN(auto rb, b.catalog()->GetTable("R"));
  ASSERT_EQ(ra->NumRows(), rb->NumRows());
  for (size_t i = 0; i < ra->NumRows(); ++i) {
    EXPECT_TRUE(ra->rows()[i].Equals(rb->rows()[i]));
  }

  // The experiment needs both matched and dangling R rows and some b = 0.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto dangling,
      a.Run("SELECT x FROM R x WHERE count(SELECT y FROM S y "
            "WHERE x.c = y.c) = 0"));
  EXPECT_GT(dangling.rows.size(), 0u);
  EXPECT_LT(dangling.rows.size(), ra->NumRows());
  TMDB_ASSERT_OK_AND_ASSIGN(auto zero_b,
                            a.Run("SELECT x FROM R x WHERE x.b = 0"));
  EXPECT_GT(zero_b.rows.size(), 0u);
}

TEST(GeneratorTest, SubsetBugHasEmptySets) {
  SubsetBugConfig config;
  config.num_x = 100;
  Database db;
  TMDB_ASSERT_OK(LoadSubsetBugTables(&db, config));
  TMDB_ASSERT_OK_AND_ASSIGN(auto empties,
                            db.Run("SELECT x FROM X x WHERE count(x.a) = 0"));
  EXPECT_GT(empties.rows.size(), 0u);
  TMDB_ASSERT_OK_AND_ASSIGN(auto x, db.catalog()->GetTable("X"));
  EXPECT_LT(empties.rows.size(), x->NumRows());
}

TEST(GeneratorTest, Section8SchemasAndSizes) {
  Section8Config config;
  config.num_x = 20;
  config.num_y = 40;
  config.num_z = 80;
  Database db;
  TMDB_ASSERT_OK(LoadSection8Tables(&db, config));
  for (const char* name : {"X", "Y", "Z"}) {
    TMDB_ASSERT_OK_AND_ASSIGN(auto table, db.catalog()->GetTable(name));
    EXPECT_GT(table->NumRows(), 0u) << name;
    for (const Value& row : table->rows()) {
      EXPECT_TRUE(ConformsTo(row, table->schema())) << row.ToString();
    }
  }
}

TEST(GeneratorTest, CompanyComplexObjects) {
  CompanyConfig config;
  config.num_depts = 4;
  config.num_emps = 20;
  Database db;
  TMDB_ASSERT_OK(LoadCompanyTables(&db, config));
  TMDB_ASSERT_OK_AND_ASSIGN(auto emp, db.catalog()->GetTable("EMP"));
  EXPECT_EQ(emp->NumRows(), 20u);
  TMDB_ASSERT_OK_AND_ASSIGN(auto dept, db.catalog()->GetTable("DEPT"));
  EXPECT_EQ(dept->NumRows(), 4u);
  // Every department member name references an existing employee.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto orphans,
      db.Run("SELECT d FROM DEPT d WHERE EXISTS n IN d.emps "
             "(n NOT IN (SELECT e.name FROM EMP e))"));
  EXPECT_EQ(orphans.rows.size(), 0u);
  // The Address sort was registered.
  TMDB_ASSERT_OK(db.catalog()->GetSort("Address").status());
}

TEST(GeneratorTest, DifferentSeedsDifferentData) {
  CountBugConfig a_config;
  a_config.seed = 1;
  CountBugConfig b_config;
  b_config.seed = 2;
  Database a;
  Database b;
  TMDB_ASSERT_OK(LoadCountBugTables(&a, a_config));
  TMDB_ASSERT_OK(LoadCountBugTables(&b, b_config));
  TMDB_ASSERT_OK_AND_ASSIGN(auto ra, a.catalog()->GetTable("R"));
  TMDB_ASSERT_OK_AND_ASSIGN(auto rb, b.catalog()->GetTable("R"));
  bool any_diff = ra->NumRows() != rb->NumRows();
  for (size_t i = 0; !any_diff && i < ra->NumRows(); ++i) {
    any_diff = !ra->rows()[i].Equals(rb->rows()[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, ScaleTablesRespectDomains) {
  ScaleConfig config;
  config.num_x = 200;
  config.num_y = 200;
  config.b_domain = 10;
  Database db;
  TMDB_ASSERT_OK(LoadScaleTables(&db, config));
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto out_of_domain,
      db.Run("SELECT x FROM X x WHERE x.b >= 10 OR x.b < 0"));
  EXPECT_EQ(out_of_domain.rows.size(), 0u);
}

}  // namespace
}  // namespace tmdb
