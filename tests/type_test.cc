#include "types/type.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "types/schema_ops.h"

namespace tmdb {
namespace {

TEST(TypeTest, BasicKinds) {
  EXPECT_TRUE(Type::Bool().is_bool());
  EXPECT_TRUE(Type::Int().is_int());
  EXPECT_TRUE(Type::Int().is_numeric());
  EXPECT_TRUE(Type::Real().is_numeric());
  EXPECT_TRUE(Type::String().is_string());
  EXPECT_TRUE(Type::Any().is_any());
  EXPECT_TRUE(Type::Set(Type::Int()).is_collection());
  EXPECT_TRUE(Type::List(Type::Int()).is_collection());
}

TEST(TypeTest, StructuralEquality) {
  Type a = Type::Tuple({{"x", Type::Int()}, {"y", Type::Set(Type::String())}});
  Type b = Type::Tuple({{"x", Type::Int()}, {"y", Type::Set(Type::String())}});
  Type c = Type::Tuple({{"y", Type::Set(Type::String())}, {"x", Type::Int()}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));  // field order matters
  EXPECT_FALSE(Type::Set(Type::Int()).Equals(Type::List(Type::Int())));
}

TEST(TypeTest, FieldLookup) {
  Type t = Type::Tuple({{"a", Type::Int()}, {"b", Type::Bool()}});
  EXPECT_EQ(t.FieldIndex("b"), 1);
  EXPECT_EQ(t.FieldIndex("z"), -1);
  TMDB_ASSERT_OK_AND_ASSIGN(Type b, t.FieldType("b"));
  EXPECT_TRUE(b.is_bool());
  EXPECT_FALSE(t.FieldType("z").ok());
  EXPECT_FALSE(Type::Int().FieldType("a").ok());
}

TEST(TypeTest, CoercesTo) {
  EXPECT_TRUE(Type::Int().CoercesTo(Type::Real()));
  EXPECT_FALSE(Type::Real().CoercesTo(Type::Int()));
  EXPECT_TRUE(Type::Any().CoercesTo(Type::Int()));
  EXPECT_TRUE(Type::Int().CoercesTo(Type::Any()));
  EXPECT_TRUE(Type::Set(Type::Int()).CoercesTo(Type::Set(Type::Real())));
  EXPECT_TRUE(Type::Set(Type::Any()).CoercesTo(Type::Set(Type::Int())));
  EXPECT_FALSE(Type::Set(Type::Int()).CoercesTo(Type::Set(Type::String())));
}

TEST(TypeTest, ToStringRendering) {
  EXPECT_EQ(Type::Int().ToString(), "INT");
  EXPECT_EQ(Type::Set(Type::Int()).ToString(), "P(INT)");
  EXPECT_EQ(Type::List(Type::Real()).ToString(), "L(REAL)");
  EXPECT_EQ(
      Type::Tuple({{"a", Type::Int()}, {"b", Type::Set(Type::String())}})
          .ToString(),
      "<a : INT, b : P(STRING)>");
}

TEST(UnifyTest, NumericAndAny) {
  TMDB_ASSERT_OK_AND_ASSIGN(Type t1, UnifyTypes(Type::Int(), Type::Real()));
  EXPECT_TRUE(t1.is_real());
  TMDB_ASSERT_OK_AND_ASSIGN(Type t2, UnifyTypes(Type::Any(), Type::Int()));
  EXPECT_TRUE(t2.is_int());
  TMDB_ASSERT_OK_AND_ASSIGN(
      Type t3, UnifyTypes(Type::Set(Type::Any()), Type::Set(Type::Int())));
  EXPECT_TRUE(t3.element().is_int());
  EXPECT_FALSE(UnifyTypes(Type::Int(), Type::String()).ok());
  EXPECT_FALSE(UnifyTypes(Type::Tuple({{"a", Type::Int()}}),
                          Type::Tuple({{"b", Type::Int()}}))
                   .ok());
}

TEST(SchemaOpsTest, ConcatTupleTypes) {
  Type a = Type::Tuple({{"x", Type::Int()}});
  Type b = Type::Tuple({{"y", Type::Bool()}});
  TMDB_ASSERT_OK_AND_ASSIGN(Type ab, ConcatTupleTypes(a, b));
  EXPECT_EQ(ab.fields().size(), 2u);
  EXPECT_FALSE(ConcatTupleTypes(a, a).ok());  // duplicate name
  EXPECT_FALSE(ConcatTupleTypes(a, Type::Int()).ok());
}

TEST(SchemaOpsTest, AddRemoveProject) {
  Type t = Type::Tuple({{"a", Type::Int()}, {"b", Type::Bool()}});
  TMDB_ASSERT_OK_AND_ASSIGN(Type added, AddField(t, "grp", Type::Set(Type::Int())));
  EXPECT_EQ(added.fields().size(), 3u);
  EXPECT_FALSE(AddField(t, "a", Type::Int()).ok());

  TMDB_ASSERT_OK_AND_ASSIGN(Type removed, RemoveField(added, "grp"));
  EXPECT_TRUE(removed.Equals(t));
  EXPECT_FALSE(RemoveField(t, "nope").ok());

  TMDB_ASSERT_OK_AND_ASSIGN(Type proj, ProjectFields(t, {"b"}));
  EXPECT_EQ(proj.fields().size(), 1u);
  EXPECT_EQ(proj.fields()[0].name, "b");
  EXPECT_FALSE(ProjectFields(t, {"nope"}).ok());
}

TEST(SchemaOpsTest, FreshFieldName) {
  Type t = Type::Tuple({{"ys", Type::Int()}, {"ys1", Type::Int()}});
  EXPECT_EQ(FreshFieldName("ys", {t}), "ys2");
  EXPECT_EQ(FreshFieldName("zs", {t}), "zs");
}

}  // namespace
}  // namespace tmdb
