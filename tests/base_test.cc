#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/random.h"
#include "base/result.h"
#include "base/status.h"
#include "base/string_util.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status e = Status::TypeError("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.code(), StatusCode::kTypeError);
  EXPECT_EQ(e.ToString(), "TypeError: bad");
  EXPECT_EQ(e.WithContext("ctx").ToString(), "TypeError: ctx: bad");
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    TMDB_RETURN_IF_ERROR(fails());
    return Status::Internal("unreached");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);
  Result<int> err = Status::ParseError("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kParseError);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("no int");
    return 5;
  };
  auto wrapper = [&](bool fail) -> Result<int> {
    TMDB_ASSIGN_OR_RETURN(int v, produce(fail));
    return v * 2;
  };
  TMDB_ASSERT_OK_AND_ASSIGN(int v, wrapper(false));
  EXPECT_EQ(v, 10);
  EXPECT_FALSE(wrapper(true).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 3);
}

TEST(StringUtilTest, JoinSplitStrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("SELECT x", "SELECT"));
  EXPECT_TRUE(EndsWith("plan.cc", ".cc"));
  EXPECT_EQ(ToLower("SeLeCt"), "select");
}

TEST(StringUtilTest, StrCatAndIndent) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(IndentLines("a\nb", 2), "  a\n  b");
  EXPECT_EQ(IndentLines("a\n", 2), "  a\n");
  EXPECT_EQ(EscapeString("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(HashTest, DeterministicAcrossRuns) {
  // Pinned values guard against accidental algorithm changes that would
  // invalidate recorded property-test seeds.
  EXPECT_EQ(HashString("nestjoin"), HashString("nestjoin"));
  EXPECT_NE(HashString("nestjoin"), HashString("semijoin"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombineUnordered(HashCombineUnordered(0, 1), 2),
            HashCombineUnordered(HashCombineUnordered(0, 2), 1));
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t u = r.Uniform(10);
    EXPECT_LT(u, 10u);
    const int64_t v = r.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(ZipfTest, DeterministicAndInRange) {
  Zipf zipf(100, 1.2);
  Random a(5);
  Random b(5);
  for (int i = 0; i < 200; ++i) {
    const uint64_t va = zipf.Next(&a);
    EXPECT_EQ(va, zipf.Next(&b));
    EXPECT_LT(va, 100u);
  }
}

TEST(ZipfTest, SkewConcentratesOnSmallKeys) {
  Zipf skewed(50, 1.5);
  Zipf uniform(50, 0.0);
  Random r1(7);
  Random r2(7);
  int skew_zero = 0;
  int uniform_zero = 0;
  for (int i = 0; i < 5000; ++i) {
    if (skewed.Next(&r1) == 0) ++skew_zero;
    if (uniform.Next(&r2) == 0) ++uniform_zero;
  }
  // Key 0 takes ~40% of skewed mass vs 2% uniform.
  EXPECT_GT(skew_zero, 1200);
  EXPECT_LT(uniform_zero, 300);
  EXPECT_GT(skew_zero, 3 * uniform_zero);
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2700);
  EXPECT_LT(hits, 3300);
}

}  // namespace
}  // namespace tmdb
