// The spill serialisation stack, bottom up: varint framing, the canonical
// Value codec (round-trip preserves structural equality, hash, and total-
// order position; malformed bytes yield kIoError, never a crash), the
// block-structured checksummed file format (any single corrupted byte
// surfaces as kIoError before a record is decoded), and the SpillManager
// temp-directory lifecycle including injected unlink failures.

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injector.h"
#include "spill/spill_file.h"
#include "spill/spill_manager.h"
#include "spill/value_codec.h"
#include "tests/test_util.h"
#include "values/value.h"

namespace tmdb {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::string Encoded(const Value& v) {
  std::string out;
  EncodeValue(v, &out);
  return out;
}

/// A corpus spanning every kind, the numeric edge cases, deep nesting, and
/// ugly strings. Kept deterministic so byte-level assertions are stable.
std::vector<Value> Corpus() {
  std::vector<Value> corpus;
  corpus.push_back(Value::Null());
  corpus.push_back(Value::Bool(false));
  corpus.push_back(Value::Bool(true));
  for (int64_t i : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-300}, std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    corpus.push_back(Value::Int(i));
  }
  for (double d : {0.0, 1.5, -2.75, 1e300, -1e-300,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::denorm_min()}) {
    corpus.push_back(Value::Real(d));
  }
  corpus.push_back(Value::String(""));
  corpus.push_back(Value::String("a"));
  corpus.push_back(Value::String(std::string("nul\0inside", 10)));
  corpus.push_back(Value::String(std::string(3000, 'x')));
  corpus.push_back(Value::EmptySet());
  corpus.push_back(testutil::IntSet({5, 1, 3}));
  corpus.push_back(Value::List({}));
  corpus.push_back(Value::List({Value::Int(1), Value::Null(),
                                Value::String("mixed")}));
  corpus.push_back(Value::Tuple({}, {}));
  corpus.push_back(testutil::IntRow({"a", "b"}, {7, -7}));
  // Complex-object shape: tuple with a set-of-tuples attribute.
  corpus.push_back(Value::Tuple(
      {"dept", "emps"},
      {Value::String("toys"),
       Value::Set({testutil::IntRow({"e", "sal"}, {1, 100}),
                   testutil::IntRow({"e", "sal"}, {2, 200})})}));
  // 200 levels of nesting — far beyond any plan, far below the decoder cap.
  Value deep = Value::Int(0);
  for (int i = 0; i < 200; ++i) deep = Value::List({std::move(deep)});
  corpus.push_back(std::move(deep));
  return corpus;
}

// ------------------------------------------------------------------ varint

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{16383}, uint64_t{16384}, uint64_t{1} << 35,
                     std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutVarint(v, &buf);
    size_t pos = 0;
    uint64_t out = 0;
    TMDB_ASSERT_OK(GetVarint(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedAndOverlongAreIoErrors) {
  std::string buf;
  PutVarint(std::numeric_limits<uint64_t>::max(), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t out = 0;
    Status s = GetVarint(std::string_view(buf).substr(0, cut), &pos, &out);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  // Eleven continuation bytes can never be a valid 64-bit varint.
  std::string overlong(11, static_cast<char>(0x80));
  size_t pos = 0;
  uint64_t out = 0;
  Status s = GetVarint(overlong, &pos, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ------------------------------------------------------------- value codec

TEST(ValueCodecTest, CorpusRoundTripsWithEqualHashAndOrder) {
  const std::vector<Value> corpus = Corpus();
  std::vector<Value> decoded;
  for (const Value& v : corpus) {
    const std::string bytes = Encoded(v);
    size_t pos = 0;
    Value back;
    TMDB_ASSERT_OK(DecodeValue(bytes, &pos, &back));
    EXPECT_EQ(pos, bytes.size()) << v.ToString();
    EXPECT_TRUE(back.Equals(v)) << v.ToString() << " vs " << back.ToString();
    EXPECT_EQ(back.Hash(), v.Hash()) << v.ToString();
    // Determinism: re-encoding the decoded value reproduces the bytes.
    EXPECT_EQ(Encoded(back), bytes) << v.ToString();
    decoded.push_back(std::move(back));
  }
  // Total-order position is preserved pairwise across the whole corpus.
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = 0; j < corpus.size(); ++j) {
      const int orig = corpus[i].Compare(corpus[j]);
      const int dec = decoded[i].Compare(decoded[j]);
      EXPECT_EQ(orig < 0, dec < 0) << i << " vs " << j;
      EXPECT_EQ(orig == 0, dec == 0) << i << " vs " << j;
    }
  }
}

TEST(ValueCodecTest, RealsRoundTripExactBits) {
  // NaN and -0.0 compare strangely, so assert on the bit pattern: encoding
  // the decoded value must reproduce the original nine bytes exactly.
  for (double d : {-0.0, std::numeric_limits<double>::quiet_NaN()}) {
    const std::string bytes = Encoded(Value::Real(d));
    size_t pos = 0;
    Value back;
    TMDB_ASSERT_OK(DecodeValue(bytes, &pos, &back));
    EXPECT_EQ(Encoded(back), bytes);
  }
  // And -0.0 differs from +0.0 on the wire even though they compare equal.
  EXPECT_NE(Encoded(Value::Real(-0.0)), Encoded(Value::Real(0.0)));
}

TEST(ValueCodecTest, StructurallyEqualValuesEncodeIdentically) {
  const Value a = Value::Set({Value::Int(1), Value::Int(2)});
  const Value b = Value::Set({Value::Int(2), Value::Int(1), Value::Int(2)});
  ASSERT_TRUE(a.Equals(b));  // sets canonicalise on construction
  EXPECT_EQ(Encoded(a), Encoded(b));
}

TEST(ValueCodecTest, NonCanonicalSetBytesDecodeToCanonicalSet) {
  // Hand-craft a set encoding with unsorted, duplicated elements — bytes the
  // encoder never produces. Decoding must rebuild the canonical set.
  std::string bytes;
  bytes.push_back(0x07);  // set tag
  PutVarint(3, &bytes);
  EncodeValue(Value::Int(3), &bytes);
  EncodeValue(Value::Int(1), &bytes);
  EncodeValue(Value::Int(1), &bytes);
  size_t pos = 0;
  Value back;
  TMDB_ASSERT_OK(DecodeValue(bytes, &pos, &back));
  EXPECT_TRUE(back.Equals(testutil::IntSet({1, 3}))) << back.ToString();
  EXPECT_EQ(back.NumElements(), 2u);
}

TEST(ValueCodecTest, TruncationsAndBadTagsAreIoErrors) {
  const std::vector<Value> corpus = Corpus();
  for (const Value& v : corpus) {
    const std::string bytes = Encoded(v);
    const size_t stride = bytes.size() > 64 ? bytes.size() / 37 : 1;
    for (size_t cut = 0; cut < bytes.size(); cut += stride) {
      size_t pos = 0;
      Value back;
      Status s =
          DecodeValue(std::string_view(bytes).substr(0, cut), &pos, &back);
      ASSERT_FALSE(s.ok()) << v.ToString() << " cut at " << cut;
      EXPECT_EQ(s.code(), StatusCode::kIoError);
    }
  }
  std::string bad(1, static_cast<char>(0x7E));  // no such tag
  size_t pos = 0;
  Value back;
  Status s = DecodeValue(bad, &pos, &back);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(ValueCodecTest, AdversarialDepthIsRejectedNotOverflowed) {
  // 2000 nested single-element lists: over the decoder's depth cap, and the
  // kind of input only a corrupted-but-CRC-colliding block could present.
  std::string bytes;
  for (int i = 0; i < 2000; ++i) {
    bytes.push_back(0x08);  // list tag
    PutVarint(1, &bytes);
  }
  bytes.push_back(0x00);  // innermost null
  size_t pos = 0;
  Value back;
  Status s = DecodeValue(bytes, &pos, &back);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// -------------------------------------------------------------- spill file

std::vector<std::string> CorpusRecords() {
  std::vector<std::string> records;
  for (const Value& v : Corpus()) records.push_back(Encoded(v));
  return records;
}

void WriteRecords(const std::string& path,
                  const std::vector<std::string>& records, size_t block_bytes,
                  FaultInjector* injector = nullptr) {
  SpillWriter writer(path, block_bytes, injector);
  TMDB_ASSERT_OK(writer.Open());
  for (const std::string& r : records) TMDB_ASSERT_OK(writer.Append(r));
  TMDB_ASSERT_OK(writer.Finish());
}

TEST(SpillFileTest, RoundTripsRecordsAcrossManySmallBlocks) {
  const std::string path = TempPath("spill_roundtrip.spill");
  const std::vector<std::string> records = CorpusRecords();
  WriteRecords(path, records, /*block_bytes=*/64);

  SpillReader reader(path, nullptr);
  TMDB_ASSERT_OK(reader.Open());
  size_t boundaries = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    std::string_view rec;
    bool eof = false;
    TMDB_ASSERT_OK(reader.Next(&rec, &eof));
    ASSERT_FALSE(eof) << "premature EOF at record " << i;
    EXPECT_EQ(std::string(rec), records[i]) << "record " << i;
    if (reader.TookBlockBoundary()) ++boundaries;
  }
  std::string_view rec;
  bool eof = false;
  TMDB_ASSERT_OK(reader.Next(&rec, &eof));
  EXPECT_TRUE(eof);
  // Tiny blocks force real block structure, and every load is observable
  // as a checkpointing boundary.
  EXPECT_GT(reader.stats().blocks, 3u);
  EXPECT_EQ(boundaries, reader.stats().blocks);
  EXPECT_EQ(reader.stats().records, records.size());
  fs::remove(path);
}

TEST(SpillFileTest, EmptyFileReadsAsImmediateEof) {
  const std::string path = TempPath("spill_empty.spill");
  WriteRecords(path, {}, 64);
  SpillReader reader(path, nullptr);
  TMDB_ASSERT_OK(reader.Open());
  std::string_view rec;
  bool eof = false;
  TMDB_ASSERT_OK(reader.Next(&rec, &eof));
  EXPECT_TRUE(eof);
  fs::remove(path);
}

/// The tentpole integrity property: flip ANY single byte of a spill file
/// and reading it must fail with kIoError — never a crash, never a wrong
/// (different-but-successfully-decoded) answer. Every byte is protected:
/// magic by the magic check, length/count/payload by the CRC, the CRC field
/// by the verification mismatch.
TEST(SpillFileTest, EverySingleByteCorruptionSurfacesAsIoError) {
  const std::string path = TempPath("spill_corrupt_base.spill");
  const std::string mutated = TempPath("spill_corrupt_mut.spill");
  WriteRecords(path, CorpusRecords(), /*block_bytes=*/256);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string copy = bytes;
    copy[i] = static_cast<char>(copy[i] ^ 0xFF);
    {
      std::ofstream out(mutated, std::ios::binary | std::ios::trunc);
      out.write(copy.data(), static_cast<std::streamsize>(copy.size()));
    }
    SpillReader reader(mutated, nullptr);
    TMDB_ASSERT_OK(reader.Open());
    Status result = Status::OK();
    while (true) {
      std::string_view rec;
      bool eof = false;
      result = reader.Next(&rec, &eof);
      if (!result.ok() || eof) break;
    }
    ASSERT_FALSE(result.ok()) << "flipped byte " << i << " went undetected";
    EXPECT_EQ(result.code(), StatusCode::kIoError)
        << "byte " << i << ": " << result.ToString();
  }
  fs::remove(path);
  fs::remove(mutated);
}

TEST(SpillFileTest, InjectedWriteFaultsSurfaceAsIoError) {
  for (IoFaultKind kind : {IoFaultKind::kShortWrite, IoFaultKind::kEnospc}) {
    const std::string path = TempPath("spill_wfault.spill");
    FaultInjector injector;
    injector.ArmIo(kind, 1);
    SpillWriter writer(path, /*block_bytes=*/64, &injector);
    TMDB_ASSERT_OK(writer.Open());
    Status s = Status::OK();
    for (int i = 0; i < 100 && s.ok(); ++i) {
      s = writer.Append(Encoded(Value::Int(i)));
    }
    if (s.ok()) s = writer.Finish();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kIoError) << s.ToString();
    EXPECT_EQ(injector.io_faults_fired(), 1u);
    (void)writer.Finish();
    fs::remove(path);
  }
}

TEST(SpillFileTest, InjectedReadCorruptionIsCaughtByTheChecksum) {
  const std::string path = TempPath("spill_rfault.spill");
  std::vector<std::string> records;
  for (int i = 0; i < 200; ++i) records.push_back(Encoded(Value::Int(i)));
  WriteRecords(path, records, /*block_bytes=*/64);

  FaultInjector injector;
  injector.ArmIo(IoFaultKind::kCorruptRead, 2);  // corrupt the second block
  SpillReader reader(path, &injector);
  TMDB_ASSERT_OK(reader.Open());
  Status result = Status::OK();
  size_t yielded = 0;
  while (true) {
    std::string_view rec;
    bool eof = false;
    result = reader.Next(&rec, &eof);
    if (!result.ok() || eof) break;
    ++yielded;
  }
  ASSERT_FALSE(result.ok()) << "corrupted block went undetected";
  EXPECT_EQ(result.code(), StatusCode::kIoError) << result.ToString();
  EXPECT_EQ(injector.io_faults_fired(), 1u);
  // The first (clean) block's records were yielded; none from the bad one.
  EXPECT_GT(yielded, 0u);
  EXPECT_LT(yielded, records.size());
  fs::remove(path);
}

// ------------------------------------------------------------ spill manager

TEST(SpillManagerTest, CreatesUniquePathsAndCleansUpEverything) {
  SpillManager manager(::testing::TempDir(), /*block_bytes=*/0, nullptr);
  EXPECT_TRUE(manager.dir().empty()) << "directory should be lazy";

  TMDB_ASSERT_OK_AND_ASSIGN(std::string p1, manager.NewFilePath("hj-build"));
  TMDB_ASSERT_OK_AND_ASSIGN(std::string p2, manager.NewFilePath("hj-build"));
  EXPECT_NE(p1, p2);
  ASSERT_FALSE(manager.dir().empty());
  EXPECT_TRUE(fs::exists(manager.dir()));

  WriteRecords(p1, {Encoded(Value::Int(1))}, 64);
  WriteRecords(p2, {Encoded(Value::Int(2))}, 64);
  const std::string dir = manager.dir();
  manager.CleanupAll();
  EXPECT_FALSE(fs::exists(dir));
  manager.CleanupAll();  // idempotent
}

TEST(SpillManagerTest, RemoveFileDeletesConsumedPartitions) {
  SpillManager manager(::testing::TempDir(), 0, nullptr);
  TMDB_ASSERT_OK_AND_ASSIGN(std::string p, manager.NewFilePath("part"));
  WriteRecords(p, {Encoded(Value::Int(1))}, 64);
  ASSERT_TRUE(fs::exists(p));
  manager.RemoveFile(p);
  EXPECT_FALSE(fs::exists(p));
  manager.CleanupAll();
}

TEST(SpillManagerTest, InjectedUnlinkFailureDefersToCleanup) {
  FaultInjector injector;
  SpillManager manager(::testing::TempDir(), 0, &injector);
  TMDB_ASSERT_OK_AND_ASSIGN(std::string p, manager.NewFilePath("part"));
  WriteRecords(p, {Encoded(Value::Int(1))}, 64);

  injector.ArmIo(IoFaultKind::kUnlinkFail, 1);
  manager.RemoveFile(p);
  EXPECT_EQ(injector.io_faults_fired(), 1u);
  EXPECT_TRUE(fs::exists(p)) << "injected unlink should leave the file";

  // The final sweep still removes everything.
  const std::string dir = manager.dir();
  manager.CleanupAll();
  EXPECT_FALSE(fs::exists(p));
  EXPECT_FALSE(fs::exists(dir));
}

TEST(SpillManagerTest, DestructorCleansUp) {
  std::string dir;
  {
    SpillManager manager(::testing::TempDir(), 0, nullptr);
    TMDB_ASSERT_OK_AND_ASSIGN(std::string p, manager.NewFilePath("x"));
    WriteRecords(p, {Encoded(Value::Int(1))}, 64);
    dir = manager.dir();
    ASSERT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));
}

}  // namespace
}  // namespace tmdb
