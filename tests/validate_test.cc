// Plan validator + dot renderer tests, and a sweep asserting that every
// plan the engine produces — naive and rewritten, across the whole query
// catalog — passes validation.

#include "algebra/validate.h"

#include <gtest/gtest.h>

#include "algebra/plan_dot.h"
#include "core/database.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK(db_.ExecuteScript(
                       "CREATE TABLE X (a : P(INT), b : INT, c : INT);"
                       "CREATE TABLE Y (a : INT, b : INT)")
                     .status());
  }
  Database db_;
};

TEST_F(ValidateTest, AllStrategiesProduceValidPlans) {
  const char* queries[] = {
      "SELECT x.c FROM X x WHERE x.c IN (SELECT y.a FROM Y y WHERE x.b = y.b)",
      "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)",
      "SELECT (c = x.c, zs = SELECT y.a FROM Y y WHERE x.b = y.b) FROM X x",
      "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE "
      "x.b = y.b AND y.a IN (SELECT y2.a FROM Y y2 WHERE y.b = y2.b))",
      "SELECT x.c FROM X x WHERE count(SELECT y.a FROM Y y WHERE x.b = y.b) "
      "= count(SELECT y2.b FROM Y y2 WHERE x.c = y2.a)",
      "UNNEST(SELECT (SELECT (c = x.c, a = y.a) FROM Y y WHERE x.b = y.b) "
      "FROM X x)",
  };
  for (const char* query : queries) {
    for (Strategy strategy :
         {Strategy::kNaive, Strategy::kNestJoin, Strategy::kNestJoinOnly}) {
      TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                                db_.Plan(query, strategy));
      TMDB_EXPECT_OK(ValidatePlan(*plan));
    }
  }
}

TEST_F(ValidateTest, BaselinePlansValidate) {
  const std::string query =
      "SELECT x.c FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y "
      "WHERE x.b = y.b)";
  for (Strategy strategy : {Strategy::kKim, Strategy::kOuterJoin}) {
    TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan, db_.Plan(query, strategy));
    TMDB_EXPECT_OK(ValidatePlan(*plan));
  }
}

TEST_F(ValidateTest, DetectsOutOfScopeVariable) {
  // Build a Select whose predicate references a variable the plan never
  // binds.
  TMDB_ASSERT_OK_AND_ASSIGN(auto table, db_.catalog()->GetTable("Y"));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(table));
  Expr stray = Expr::Must(Expr::Binary(
      BinaryOp::kGt,
      Expr::Must(Expr::Field(
          Expr::Var("ghost", Type::Tuple({{"k", Type::Int()}})), "k")),
      Expr::Literal(Value::Int(0))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr bad,
                            LogicalOp::Select(scan, "y", stray));
  Status status = ValidatePlan(*bad);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ghost"), std::string::npos);
}

TEST_F(ValidateTest, DetectsIncompatibleVariableType) {
  TMDB_ASSERT_OK_AND_ASSIGN(auto table, db_.catalog()->GetTable("Y"));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(table));
  // Variable typed with a field Y does not have.
  Expr wrong = Expr::Must(Expr::Binary(
      BinaryOp::kGt,
      Expr::Must(Expr::Field(
          Expr::Var("y", Type::Tuple({{"nope", Type::Int()}})), "nope")),
      Expr::Literal(Value::Int(0))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr bad,
                            LogicalOp::Select(scan, "y", wrong));
  EXPECT_FALSE(ValidatePlan(*bad).ok());
}

TEST_F(ValidateTest, AcceptsNarrowedVariableTypes) {
  // Rewrites leave references typed with a *prefix* of the actual row —
  // the validator must accept field-subset compatibility.
  TMDB_ASSERT_OK_AND_ASSIGN(auto table, db_.catalog()->GetTable("Y"));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(table));
  Expr narrow = Expr::Must(Expr::Binary(
      BinaryOp::kGt,
      Expr::Must(Expr::Field(Expr::Var("y", Type::Tuple({{"a", Type::Int()}})),
                             "a")),
      Expr::Literal(Value::Int(0))));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr plan,
                            LogicalOp::Select(scan, "y", narrow));
  TMDB_EXPECT_OK(ValidatePlan(*plan));
}

TEST_F(ValidateTest, DotRenderingContainsOperatorsAndSubqueries) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr naive,
      db_.Plan("SELECT x.c FROM X x WHERE x.c IN "
               "(SELECT y.a FROM Y y WHERE x.b = y.b)",
               Strategy::kNaive));
  const std::string dot = PlanToDot(*naive);
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("Scan(X)"), std::string::npos);
  EXPECT_NE(dot.find("correlated subquery"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);

  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr rewritten,
      db_.Plan("SELECT x.c FROM X x WHERE x.c IN "
               "(SELECT y.a FROM Y y WHERE x.b = y.b)",
               Strategy::kNestJoin));
  const std::string flat_dot = PlanToDot(*rewritten);
  EXPECT_NE(flat_dot.find("SemiJoin"), std::string::npos);
  EXPECT_EQ(flat_dot.find("correlated subquery"), std::string::npos);
}

}  // namespace
}  // namespace tmdb
