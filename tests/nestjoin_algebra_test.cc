// Empirical validation of the nest join's algebraic properties from
// Section 6 of the paper, on randomly generated data:
//
//   (1) π_X(X ▵ Y) = X
//   (2) (X ⋈_{r(x,y)} Y) ▵_{r(x,z)} Z ≡ (X ▵_{r(x,z)} Z) ⋈_{r(x,y)} Y
//   (3) (X ⋈_{r(x,y)} Y) ▵_{r(y,z)} Z ≡ X ⋈_{r(x,y)} (Y ▵_{r(y,z)} Z)
//   (4) X ▵ Y = ν*(X ⟖ Y)   (nest join = outerjoin followed by nest-star)
//
// plus the negative results the paper points out: the nest join is not
// commutative, and X ▵ (Y ⋈ Z) is not equivalent to (X ▵ Y) ⋈ Z (they are
// typed differently).
//
// Tuple attribute order differs between the two sides of (2) (the grouped
// attribute lands in a different position), so comparison is modulo
// attribute reordering.

#include <algorithm>
#include <gtest/gtest.h>

#include "base/random.h"
#include "exec/executor.h"
#include "rewrite/simplify.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

using testutil::IntRow;
using testutil::RowsEqual;

/// Reorders every tuple's attributes alphabetically, recursively, so
/// attribute order does not affect comparison.
Value NormalizeAttrOrder(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kTuple: {
      std::vector<std::pair<std::string, Value>> fields;
      for (size_t i = 0; i < v.TupleSize(); ++i) {
        fields.emplace_back(v.FieldName(i),
                            NormalizeAttrOrder(v.FieldValue(i)));
      }
      std::sort(fields.begin(), fields.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<std::string> names;
      std::vector<Value> values;
      for (auto& [n, val] : fields) {
        names.push_back(n);
        values.push_back(std::move(val));
      }
      return Value::Tuple(std::move(names), std::move(values));
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      std::vector<Value> elems;
      elems.reserve(v.NumElements());
      for (const Value& e : v.Elements()) {
        elems.push_back(NormalizeAttrOrder(e));
      }
      return v.is_set() ? Value::Set(std::move(elems))
                        : Value::List(std::move(elems));
    }
    default:
      return v;
  }
}

class NestJoinAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // X(xa, xb), Y(ya, yb), Z(za, zb) with overlapping small domains.
    Random rng(17);
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"xa", Type::Int()},
                                            {"xb", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"ya", Type::Int()},
                                            {"yb", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        z_, Table::Create("Z", Type::Tuple({{"za", Type::Int()},
                                            {"zb", Type::Int()}})));
    for (int i = 0; i < 40; ++i) {
      TMDB_ASSERT_OK(x_->Insert(
          IntRow({"xa", "xb"}, {i, rng.UniformInt(0, 8)})));
    }
    for (int i = 0; i < 60; ++i) {
      // Draws from the small domain collide; duplicates are simply dropped
      // (extensions are sets).
      Status s = y_->Insert(
          IntRow({"ya", "yb"}, {rng.UniformInt(0, 8), rng.UniformInt(0, 8)}));
      if (s.code() != StatusCode::kAlreadyExists) TMDB_ASSERT_OK(s);
    }
    for (int i = 0; i < 50; ++i) {
      TMDB_ASSERT_OK(z_->Insert(
          IntRow({"za", "zb"}, {rng.UniformInt(0, 8), i})));
    }
  }

  Expr FieldOf(const char* var, const Type& t, const char* field) {
    return Expr::Must(Expr::Field(Expr::Var(var, t), field));
  }

  std::vector<Value> Run(const LogicalOpPtr& plan) {
    Executor executor;
    auto rows = executor.Run(plan);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::vector<Value> out;
    for (const Value& row : rows.ok() ? *rows : std::vector<Value>()) {
      out.push_back(NormalizeAttrOrder(row));
    }
    return out;
  }

  std::shared_ptr<Table> x_, y_, z_;
};

TEST_F(NestJoinAlgebraTest, Identity1ProjectionUndoesNestJoin) {
  // π_X(X ▵ Y) = X, as a SimplifyPlan rule and as an executed identity.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_x, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_y, LogicalOp::Scan(y_));
  Expr pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("y", y_->schema(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nj,
      LogicalOp::NestJoin(scan_x, scan_y, "x", "y", pred,
                          Expr::Var("y", y_->schema()), "grp"));
  // Build the strip projection π_X.
  Expr row = Expr::Var("x", nj->output_type());
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr strip,
      Expr::MakeTuple({"xa", "xb"},
                      {Expr::Must(Expr::Field(row, "xa")),
                       Expr::Must(Expr::Field(row, "xb"))}));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr projected,
                            LogicalOp::Map(nj, "x", strip));
  // SimplifyPlan collapses the whole thing back to Scan(X).
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr simplified,
                            SimplifyPlan(projected));
  EXPECT_EQ(simplified->op_kind(), OpKind::kScan);
  // And the results agree with X itself.
  EXPECT_TRUE(RowsEqual(Run(projected), Run(scan_x)));
}

TEST_F(NestJoinAlgebraTest, Identity2NestJoinCommutesWithIndependentJoin) {
  // r(x, y): xb = yb; r(x, z): xa = za. Both sides evaluated and compared
  // modulo attribute order.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_x, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_y, LogicalOp::Scan(y_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_z, LogicalOp::Scan(z_));
  Expr g = Expr::Var("z", z_->schema());

  // LHS: (X ⋈ Y) ▵ Z — the join row j carries X and Y attributes.
  Expr join_pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("y", y_->schema(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr xy, LogicalOp::Join(scan_x, scan_y, "x", "y", join_pred));
  Expr nest_pred_lhs = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("j", xy->output_type(), "xa"),
      FieldOf("z", z_->schema(), "za")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr lhs,
      LogicalOp::NestJoin(xy, scan_z, "j", "z", nest_pred_lhs, g, "grp"));

  // RHS: (X ▵ Z) ⋈ Y.
  Expr nest_pred_rhs = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xa"),
      FieldOf("z", z_->schema(), "za")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr xz,
      LogicalOp::NestJoin(scan_x, scan_z, "x", "z", nest_pred_rhs, g, "grp"));
  Expr join_pred_rhs = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", xz->output_type(), "xb"),
      FieldOf("y", y_->schema(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr rhs,
      LogicalOp::Join(xz, scan_y, "x", "y", join_pred_rhs));

  EXPECT_TRUE(RowsEqual(Run(lhs), Run(rhs)));
}

TEST_F(NestJoinAlgebraTest, Identity3NestJoinAssociatesIntoRightOperand) {
  // (X ⋈_{xb=yb} Y) ▵_{ya=za} Z ≡ X ⋈_{xb=yb} (Y ▵_{ya=za} Z).
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_x, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_y, LogicalOp::Scan(y_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_z, LogicalOp::Scan(z_));
  Expr g = Expr::Var("z", z_->schema());

  Expr join_pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("y", y_->schema(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr xy, LogicalOp::Join(scan_x, scan_y, "x", "y", join_pred));
  Expr nest_pred_lhs = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("j", xy->output_type(), "ya"),
      FieldOf("z", z_->schema(), "za")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr lhs,
      LogicalOp::NestJoin(xy, scan_z, "j", "z", nest_pred_lhs, g, "grp"));

  Expr nest_pred_rhs = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("y", y_->schema(), "ya"),
      FieldOf("z", z_->schema(), "za")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr yz,
      LogicalOp::NestJoin(scan_y, scan_z, "y", "z", nest_pred_rhs, g, "grp"));
  Expr join_pred_rhs = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("y", yz->output_type(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr rhs,
      LogicalOp::Join(scan_x, yz, "x", "y", join_pred_rhs));

  EXPECT_TRUE(RowsEqual(Run(lhs), Run(rhs)));
}

TEST_F(NestJoinAlgebraTest, Identity4NestJoinEqualsOuterJoinThenNestStar) {
  // X ▵ Y = ν*(X ⟖ Y) with the identity function (Section 6).
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_x, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_y, LogicalOp::Scan(y_));
  Expr pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("y", y_->schema(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nj,
      LogicalOp::NestJoin(scan_x, scan_y, "x", "y", pred,
                          Expr::Var("y", y_->schema()), "grp"));

  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr oj,
      LogicalOp::OuterJoin(scan_x, scan_y, "x", "y", pred));
  Expr j = Expr::Var("j", oj->output_type());
  TMDB_ASSERT_OK_AND_ASSIGN(
      Expr elem, Expr::MakeTuple({"ya", "yb"},
                                 {Expr::Must(Expr::Field(j, "ya")),
                                  Expr::Must(Expr::Field(j, "yb"))}));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nested,
      LogicalOp::Nest(oj, {"xa", "xb"}, "j", elem, "grp",
                      /*null_group_to_empty=*/true));

  EXPECT_TRUE(RowsEqual(Run(nj), Run(nested)));
}

TEST_F(NestJoinAlgebraTest, NestJoinIsNotCommutative) {
  // X ▵ Y and Y ▵ X have different types and different cardinalities in
  // general — the paper's "less pleasant algebraic properties".
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_x, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_y, LogicalOp::Scan(y_));
  Expr pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("y", y_->schema(), "yb")));
  Expr pred_flipped = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("y", y_->schema(), "yb"),
      FieldOf("x", x_->schema(), "xb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr xy,
      LogicalOp::NestJoin(scan_x, scan_y, "x", "y", pred,
                          Expr::Var("y", y_->schema()), "grp"));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr yx,
      LogicalOp::NestJoin(scan_y, scan_x, "y", "x", pred_flipped,
                          Expr::Var("x", x_->schema()), "grp"));
  EXPECT_FALSE(xy->output_type().Equals(yx->output_type()));
  EXPECT_EQ(Run(xy).size(), x_->NumRows());
  EXPECT_EQ(Run(yx).size(), y_->NumRows());
}

TEST_F(NestJoinAlgebraTest, NestJoinDoesNotAssociateWithJoinOnTheLeft) {
  // X ▵ (Y ⋈ Z) vs (X ▵ Y) ⋈ Z: "the two expressions already being typed
  // differently" — the grouped attribute holds joined pairs on one side
  // and Y rows on the other.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_x, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_y, LogicalOp::Scan(y_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan_z, LogicalOp::Scan(z_));
  Expr yz_pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("y", y_->schema(), "ya"),
      FieldOf("z", z_->schema(), "za")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr yz, LogicalOp::Join(scan_y, scan_z, "y", "z", yz_pred));
  Expr x_pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("j", yz->output_type(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr lhs,
      LogicalOp::NestJoin(scan_x, yz, "x", "j", x_pred,
                          Expr::Var("j", yz->output_type()), "grp"));

  Expr xy_pred = Expr::Must(Expr::Binary(
      BinaryOp::kEq, FieldOf("x", x_->schema(), "xb"),
      FieldOf("y", y_->schema(), "yb")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr xj,
      LogicalOp::NestJoin(scan_x, scan_y, "x", "y", xy_pred,
                          Expr::Var("y", y_->schema()), "grp"));
  // (X ▵ Y) ⋈ Z is typed differently: grp holds Y rows, and z attributes
  // sit at the top level.
  Expr out_pred = Expr::True();
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr rhs, LogicalOp::Join(xj, scan_z, "x", "z", out_pred));
  EXPECT_FALSE(lhs->output_type().Equals(rhs->output_type()));
}

}  // namespace
}  // namespace tmdb
