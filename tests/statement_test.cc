// Statement layer: DDL/DML parsing and execution through the Database
// facade — CREATE TABLE, DEFINE SORT, INSERT INTO ... VALUES, scripts.

#include <gtest/gtest.h>

#include "core/database.h"
#include "parser/statement.h"
#include "tests/test_util.h"

namespace tmdb {
namespace {

TEST(StatementParseTest, CreateTable) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      StatementPtr s,
      ParseStatement("CREATE TABLE Emp (name : STRING, sal : INT, "
                     "kids : P((age : INT)))"));
  EXPECT_EQ(s->kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(s->target, "Emp");
  EXPECT_EQ(s->schema->ToString(),
            "(name : STRING, sal : INT, kids : P((age : INT)))");
}

TEST(StatementParseTest, DefineSort) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      StatementPtr s,
      ParseStatement("DEFINE SORT Address AS (street : STRING, "
                     "city : STRING)"));
  EXPECT_EQ(s->kind, Statement::Kind::kDefineSort);
  EXPECT_EQ(s->target, "Address");
}

TEST(StatementParseTest, NamedSortReference) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      StatementPtr s,
      ParseStatement("CREATE TABLE D (addr : Address, tags : P(STRING))"));
  EXPECT_EQ(s->schema->field_types[0]->kind, TypeAst::Kind::kNamed);
  EXPECT_EQ(s->schema->field_types[0]->name, "Address");
}

TEST(StatementParseTest, Insert) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      StatementPtr s,
      ParseStatement("INSERT INTO R VALUES (a = 1, b = {1, 2}), "
                     "(a = 2, b = {})"));
  EXPECT_EQ(s->kind, Statement::Kind::kInsert);
  EXPECT_EQ(s->target, "R");
  EXPECT_EQ(s->values.size(), 2u);
}

TEST(StatementParseTest, PlainQueryFallsThrough) {
  TMDB_ASSERT_OK_AND_ASSIGN(StatementPtr s,
                            ParseStatement("SELECT x FROM R x;"));
  EXPECT_EQ(s->kind, Statement::Kind::kQuery);
}

TEST(StatementParseTest, Script) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto script,
      ParseScript("CREATE TABLE R (a : INT); "
                  "INSERT INTO R VALUES (a = 1);; "
                  "SELECT x FROM R x;"));
  ASSERT_EQ(script.size(), 3u);
  EXPECT_EQ(script[0]->kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(script[1]->kind, Statement::Kind::kInsert);
  EXPECT_EQ(script[2]->kind, Statement::Kind::kQuery);
}

TEST(StatementParseTest, Errors) {
  EXPECT_FALSE(ParseStatement("CREATE R (a : INT)").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE R a : INT").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE R (a INT)").ok());
  EXPECT_FALSE(ParseStatement("INSERT R VALUES (a = 1)").ok());
  EXPECT_FALSE(ParseStatement("SELECT x FROM R x SELECT").ok());
  EXPECT_FALSE(ParseScript("CREATE TABLE R (a : INT) SELECT x FROM R x").ok());
}

TEST(StatementExecuteTest, EndToEndScript) {
  Database db;
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto results,
      db.ExecuteScript(
          "DEFINE SORT Address AS (city : STRING);"
          "CREATE TABLE EMP (name : STRING, addr : Address, sal : INT);"
          "INSERT INTO EMP VALUES"
          "  (name = \"ann\", addr = (city = \"ams\"), sal = 100),"
          "  (name = \"bob\", addr = (city = \"utr\"), sal = 200),"
          "  (name = \"cee\", addr = (city = \"ams\"), sal = 300);"
          "SELECT e.name FROM EMP e WHERE e.addr.city = \"ams\";"));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_FALSE(results[0].is_query);
  EXPECT_NE(results[2].message.find("3 row(s)"), std::string::npos);
  ASSERT_TRUE(results[3].is_query);
  EXPECT_EQ(results[3].query.rows.size(), 2u);
}

TEST(StatementExecuteTest, InsertValidatesSchema) {
  Database db;
  TMDB_ASSERT_OK(db.Execute("CREATE TABLE R (a : INT)").status());
  EXPECT_FALSE(db.Execute("INSERT INTO R VALUES (a = \"str\")").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO R VALUES (b = 1)").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO NoTable VALUES (a = 1)").ok());
  // Duplicate rows rejected (extensions are sets).
  TMDB_ASSERT_OK(db.Execute("INSERT INTO R VALUES (a = 1)").status());
  EXPECT_FALSE(db.Execute("INSERT INTO R VALUES (a = 1)").ok());
}

TEST(StatementExecuteTest, InsertMayUseSubqueries) {
  Database db;
  TMDB_ASSERT_OK(db.Execute("CREATE TABLE R (a : INT)").status());
  TMDB_ASSERT_OK(
      db.Execute("INSERT INTO R VALUES (a = 1), (a = 2)").status());
  TMDB_ASSERT_OK(
      db.Execute("CREATE TABLE T (n : INT, all : P(INT))").status());
  // The VALUES expression may itself contain a query.
  TMDB_ASSERT_OK(db.Execute("INSERT INTO T VALUES "
                            "(n = count(SELECT x FROM R x), "
                            " all = SELECT x.a FROM R x)")
                     .status());
  TMDB_ASSERT_OK_AND_ASSIGN(auto result, db.Execute("SELECT t FROM T t"));
  ASSERT_EQ(result.query.rows.size(), 1u);
  EXPECT_EQ(result.query.rows[0].ToString(), "<n = 2, all = {1, 2}>");
}

TEST(StatementExecuteTest, CreateDuplicateTableFails) {
  Database db;
  TMDB_ASSERT_OK(db.Execute("CREATE TABLE R (a : INT)").status());
  EXPECT_FALSE(db.Execute("CREATE TABLE R (a : INT)").ok());
}

TEST(StatementExecuteTest, UnknownSortFails) {
  Database db;
  EXPECT_FALSE(db.Execute("CREATE TABLE R (a : NoSuchSort)").ok());
}

TEST(StatementExecuteTest, ScriptStopsAtFirstError) {
  Database db;
  auto result = db.ExecuteScript(
      "CREATE TABLE R (a : INT);"
      "INSERT INTO R VALUES (a = \"wrong\");"
      "CREATE TABLE S (b : INT)");
  EXPECT_FALSE(result.ok());
  // R was created before the failure; S was not.
  EXPECT_TRUE(db.catalog()->HasTable("R"));
  EXPECT_FALSE(db.catalog()->HasTable("S"));
}

TEST(StatementExecuteTest, QueryThroughExecuteUsesStrategy) {
  Database db;
  TMDB_ASSERT_OK(db.ExecuteScript(
                       "CREATE TABLE R (a : INT, b : INT);"
                       "CREATE TABLE S (b : INT, c : INT);"
                       "INSERT INTO R VALUES (a = 1, b = 5), (a = 2, b = 6);"
                       "INSERT INTO S VALUES (b = 5, c = 9)")
                     .status());
  RunOptions options;
  options.strategy = Strategy::kNestJoin;
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto result,
      db.Execute("SELECT x.a FROM R x WHERE x.b IN "
                 "(SELECT y.b FROM S y WHERE y.c > 0)",
                 options));
  ASSERT_TRUE(result.is_query);
  ASSERT_EQ(result.query.rows.size(), 1u);
  EXPECT_EQ(result.query.rows[0].AsInt(), 1);
}

}  // namespace
}  // namespace tmdb
