// Frame and payload codec tests for the wire protocol: roundtrips,
// corruption detection (the CRC discipline mirrored from the spill codec),
// bounds enforcement, and the FaultInjector wire channels.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/fault_injector.h"
#include "net/wire.h"
#include "values/value.h"

namespace tmdb {
namespace {

Frame RoundtripHeaderAndPayload(const Frame& in, Status* status) {
  std::string bytes;
  EncodeFrame(in, &bytes);
  FrameHeader header;
  *status = DecodeFrameHeader(bytes.data(), &header);
  if (!status->ok()) return Frame{};
  std::string_view payload(bytes.data() + kWireHeaderBytes,
                           header.payload_len);
  *status = ValidateFramePayload(header, payload);
  if (!status->ok()) return Frame{};
  Frame out;
  out.type = static_cast<FrameType>(header.type);
  out.request_id = header.request_id;
  out.payload = std::string(payload);
  return out;
}

TEST(WireFrameTest, RoundtripsHeaderPayloadAndRequestId) {
  Frame in;
  in.type = FrameType::kRows;
  in.request_id = 0x1122334455667788ull;
  in.payload = "some payload bytes";
  Status status;
  const Frame out = RoundtripHeaderAndPayload(in, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(WireFrameTest, EmptyPayloadRoundtrips) {
  Frame in;
  in.type = FrameType::kGoodbye;
  in.request_id = 7;
  Status status;
  const Frame out = RoundtripHeaderAndPayload(in, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(out.payload.empty());
}

TEST(WireFrameTest, DetectsBadMagic) {
  Frame in;
  in.type = FrameType::kDone;
  std::string bytes;
  EncodeFrame(in, &bytes);
  bytes[0] = static_cast<char>(bytes[0] ^ 0xFF);
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(bytes.data(), &header).code(),
            StatusCode::kIoError);
}

TEST(WireFrameTest, DetectsUnknownFrameType) {
  Frame in;
  in.type = static_cast<FrameType>(99);
  std::string bytes;
  EncodeFrame(in, &bytes);
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(bytes.data(), &header).code(),
            StatusCode::kIoError);
}

TEST(WireFrameTest, RejectsOversizedPayloadLength) {
  Frame in;
  in.type = FrameType::kRows;
  std::string bytes;
  EncodeFrame(in, &bytes);
  // Overwrite payload_len (bytes 8..11) with a hostile length.
  const uint32_t huge = static_cast<uint32_t>(kWireMaxPayloadBytes) + 1;
  bytes[8] = static_cast<char>(huge & 0xFF);
  bytes[9] = static_cast<char>((huge >> 8) & 0xFF);
  bytes[10] = static_cast<char>((huge >> 16) & 0xFF);
  bytes[11] = static_cast<char>((huge >> 24) & 0xFF);
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(bytes.data(), &header).code(),
            StatusCode::kIoError);
}

TEST(WireFrameTest, EveryFlippedBitFailsCrcOrHeaderCheck) {
  Frame in;
  in.type = FrameType::kError;
  in.request_id = 42;
  in.payload = "corruption sweep target";
  std::string clean;
  EncodeFrame(in, &clean);
  // Flip each byte (past the magic) once: header decode or CRC validation
  // must reject every single corruption — the spill-block discipline.
  for (size_t i = 4; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
    FrameHeader header;
    Status status = DecodeFrameHeader(bytes.data(), &header);
    if (status.ok()) {
      status = ValidateFramePayload(
          header, std::string_view(bytes.data() + kWireHeaderBytes,
                                   bytes.size() - kWireHeaderBytes));
    }
    EXPECT_FALSE(status.ok()) << "corruption at byte " << i << " undetected";
  }
}

TEST(WireRequestTest, RoundtripsEveryKnob) {
  WireRequest in;
  in.query = "SELECT x FROM R x WHERE x.a > 3";
  in.strategy = "nestjoin";
  in.num_threads = 4;
  in.timeout_ms = 1500;
  in.memory_budget_bytes = 123456;
  in.max_rows = 999;
  in.queue_wait_ms = 250;
  in.enable_spill = true;
  in.enable_columnar = false;
  std::string payload;
  EncodeRequest(in, &payload);
  WireRequest out;
  ASSERT_TRUE(DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.query, in.query);
  EXPECT_EQ(out.strategy, in.strategy);
  EXPECT_EQ(out.num_threads, in.num_threads);
  EXPECT_EQ(out.timeout_ms, in.timeout_ms);
  EXPECT_EQ(out.memory_budget_bytes, in.memory_budget_bytes);
  EXPECT_EQ(out.max_rows, in.max_rows);
  EXPECT_EQ(out.queue_wait_ms, in.queue_wait_ms);
  EXPECT_EQ(out.enable_spill, in.enable_spill);
  EXPECT_EQ(out.enable_columnar, in.enable_columnar);
}

TEST(WireRequestTest, RejectsTrailingBytesAndTruncation) {
  WireRequest in;
  in.query = "SELECT 1";
  std::string payload;
  EncodeRequest(in, &payload);
  WireRequest out;
  EXPECT_FALSE(DecodeRequest(payload + "x", &out).ok());
  EXPECT_FALSE(
      DecodeRequest(std::string_view(payload).substr(0, payload.size() - 1),
                    &out)
          .ok());
  EXPECT_FALSE(DecodeRequest("", &out).ok());
}

TEST(WireRequestTest, RejectsWrongProtocolVersion) {
  WireRequest in;
  in.query = "SELECT 1";
  std::string payload;
  EncodeRequest(in, &payload);
  payload[0] = static_cast<char>(kWireProtoVersion + 1);  // version varint
  WireRequest out;
  EXPECT_FALSE(DecodeRequest(payload, &out).ok());
}

TEST(WirePayloadTest, ErrorRejectedAcceptedDoneRoundtrip) {
  WireError error_in{StatusCode::kDeadlineExceeded, "query deadline exceeded"};
  std::string payload;
  EncodeError(error_in, &payload);
  WireError error_out;
  ASSERT_TRUE(DecodeError(payload, &error_out).ok());
  EXPECT_EQ(error_out.code, error_in.code);
  EXPECT_EQ(error_out.message, error_in.message);

  WireRejected rejected_in;
  rejected_in.code = StatusCode::kResourceExhausted;
  rejected_in.message = std::string(kRejectedMessagePrefix) + ": queue full";
  rejected_in.retry_after_ms = 75;
  payload.clear();
  EncodeRejected(rejected_in, &payload);
  WireRejected rejected_out;
  ASSERT_TRUE(DecodeRejected(payload, &rejected_out).ok());
  EXPECT_EQ(rejected_out.code, rejected_in.code);
  EXPECT_EQ(rejected_out.message, rejected_in.message);
  EXPECT_EQ(rejected_out.retry_after_ms, rejected_in.retry_after_ms);

  WireAccepted accepted_in;
  accepted_in.granted_memory_bytes = 32 << 20;
  accepted_in.granted_threads = 2;
  accepted_in.active_queries = 5;
  payload.clear();
  EncodeAccepted(accepted_in, &payload);
  WireAccepted accepted_out;
  ASSERT_TRUE(DecodeAccepted(payload, &accepted_out).ok());
  EXPECT_EQ(accepted_out.granted_memory_bytes,
            accepted_in.granted_memory_bytes);
  EXPECT_EQ(accepted_out.granted_threads, accepted_in.granted_threads);
  EXPECT_EQ(accepted_out.active_queries, accepted_in.active_queries);

  payload.clear();
  EncodeDonePayload("created table R", &payload);
  std::string message;
  ASSERT_TRUE(DecodeDonePayload(payload, &message).ok());
  EXPECT_EQ(message, "created table R");
}

TEST(WirePayloadTest, ErrorPayloadRejectsUnknownStatusCode) {
  std::string payload;
  payload.push_back(60);  // no such StatusCode
  payload.push_back(0);   // empty message
  WireError error;
  EXPECT_FALSE(DecodeError(payload, &error).ok());
}

TEST(WirePayloadTest, RowsRoundtripThroughCanonicalCodec) {
  std::vector<Value> rows;
  rows.push_back(Value::Int(1));
  rows.push_back(Value::String("two"));
  rows.push_back(Value::Tuple({"a", "b"},
                              {Value::Int(3), Value::String("three")}));
  std::string payload;
  EncodeRowsPayload(rows, 0, rows.size(), &payload);
  std::vector<Value> decoded;
  ASSERT_TRUE(DecodeRowsPayload(payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(decoded[i] == rows[i]) << "row " << i;
  }
  EXPECT_FALSE(DecodeRowsPayload(payload + "x", &decoded).ok());
}

TEST(WirePayloadTest, StatsRoundtripAllCounters) {
  ExecStats in;
  in.rows_emitted = 1;
  in.predicate_evals = 2;
  in.subplan_evals = 3;
  in.hash_probes = 4;
  in.rows_built = 5;
  in.spill_partitions = 6;
  in.spill_bytes_written = 7;
  in.spill_bytes_read = 8;
  in.spill_max_depth = 9;
  in.spill_sort_runs = 14;
  in.subplan_cache_hits = 10;
  in.subplan_cache_misses = 11;
  in.subplan_cache_evictions = 12;
  in.subplan_cache_disk_evictions = 15;
  in.subplan_cache_disk_faults = 16;
  in.guard_checkpoints = 13;
  in.morsels_dispatched = 17;
  in.morsels_stolen = 18;
  std::string payload;
  EncodeStatsPayload(in, &payload);
  ExecStats out;
  ASSERT_TRUE(DecodeStatsPayload(payload, &out).ok());
  EXPECT_EQ(out.rows_emitted, in.rows_emitted);
  EXPECT_EQ(out.predicate_evals, in.predicate_evals);
  EXPECT_EQ(out.subplan_evals, in.subplan_evals);
  EXPECT_EQ(out.hash_probes, in.hash_probes);
  EXPECT_EQ(out.rows_built, in.rows_built);
  EXPECT_EQ(out.spill_partitions, in.spill_partitions);
  EXPECT_EQ(out.spill_bytes_written, in.spill_bytes_written);
  EXPECT_EQ(out.spill_bytes_read, in.spill_bytes_read);
  EXPECT_EQ(out.spill_max_depth, in.spill_max_depth);
  EXPECT_EQ(out.spill_sort_runs, in.spill_sort_runs);
  EXPECT_EQ(out.subplan_cache_hits, in.subplan_cache_hits);
  EXPECT_EQ(out.subplan_cache_misses, in.subplan_cache_misses);
  EXPECT_EQ(out.subplan_cache_evictions, in.subplan_cache_evictions);
  EXPECT_EQ(out.subplan_cache_disk_evictions, in.subplan_cache_disk_evictions);
  EXPECT_EQ(out.subplan_cache_disk_faults, in.subplan_cache_disk_faults);
  EXPECT_EQ(out.guard_checkpoints, in.guard_checkpoints);
  EXPECT_EQ(out.morsels_dispatched, in.morsels_dispatched);
  EXPECT_EQ(out.morsels_stolen, in.morsels_stolen);
}

TEST(WireFaultChannelTest, SendChannelFiresOnNthSendOnly) {
  FaultInjector injector;
  injector.ArmWire(WireFaultKind::kCorruptCrc, 3);
  EXPECT_EQ(injector.ShouldFailSend(), WireFaultKind::kNone);
  EXPECT_EQ(injector.ShouldFailSend(), WireFaultKind::kNone);
  EXPECT_EQ(injector.ShouldFailSend(), WireFaultKind::kCorruptCrc);
  EXPECT_EQ(injector.ShouldFailSend(), WireFaultKind::kNone);
  EXPECT_EQ(injector.wire_sends_seen(), 4u);
  EXPECT_EQ(injector.wire_faults_fired(), 1u);
}

TEST(WireFaultChannelTest, ChannelsAreIndependent) {
  FaultInjector injector;
  injector.ArmWire(WireFaultKind::kShortRead, 1);
  // Send and accept consultations do not consume the recv channel's count.
  EXPECT_EQ(injector.ShouldFailSend(), WireFaultKind::kNone);
  EXPECT_FALSE(injector.ShouldFailAccept());
  EXPECT_TRUE(injector.ShouldFailRecv());
  EXPECT_FALSE(injector.ShouldFailRecv());
  EXPECT_EQ(injector.wire_sends_seen(), 1u);
  EXPECT_EQ(injector.wire_accepts_seen(), 1u);
  EXPECT_EQ(injector.wire_recvs_seen(), 2u);
}

TEST(WireFaultChannelTest, CountOnlyArmTalliesWithoutFiring) {
  FaultInjector injector;
  injector.ArmWire(WireFaultKind::kNone, 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.ShouldFailSend(), WireFaultKind::kNone);
  }
  EXPECT_EQ(injector.wire_sends_seen(), 5u);
  EXPECT_EQ(injector.wire_faults_fired(), 0u);
  injector.DisarmWire();
  EXPECT_EQ(injector.ShouldFailSend(), WireFaultKind::kNone);
}

}  // namespace
}  // namespace tmdb
