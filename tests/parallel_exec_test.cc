// Determinism tests for intra-operator parallelism: any num_threads must
// produce results *identical* to serial execution — same rows, same order,
// same ExecStats. Also unit-tests the legacy ThreadPool (kept as the
// static-dispatch bench baseline) and the ParallelForMorsels entry point
// over the shared work-stealing scheduler.

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/subplan.h"
#include "base/fault_injector.h"
#include "base/random.h"
#include "base/thread_pool.h"
#include "catalog/table.h"
#include "core/database.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/parallel_util.h"
#include "optimizer/planner.h"
#include "sched/scheduler.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace tmdb {
namespace {

using testutil::IntRow;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (size_t n : {1u, 2u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // Zero threads is clamped to one worker.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i, &sum] {
      sum.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor must complete all 50 before joining
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool must survive a throwing task and keep serving new ones.
  auto good = pool.Submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ParallelForMorselsTest, ThrowingBodyBecomesStatusAndSchedulerSurvives) {
  QuerySched sched(4);
  std::vector<MorselRange> morsels = SplitMorsels(100, 4);
  std::atomic<int> calls{0};
  Status status = ParallelForMorsels(
      &sched, /*guard=*/nullptr, morsels,
      [&calls](size_t index, MorselRange) -> Status {
        calls.fetch_add(1, std::memory_order_relaxed);
        if (index == 2) throw std::runtime_error("boom in morsel");
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  EXPECT_NE(status.ToString().find("parallel task threw"), std::string::npos)
      << status.ToString();
  // The shared scheduler must keep serving work after the contained
  // exception — including for the same query registration.
  std::atomic<size_t> covered{0};
  Status after = ParallelForMorsels(
      &sched, /*guard=*/nullptr, SplitMorsels(100, 4),
      [&covered](size_t, MorselRange m) -> Status {
        covered.fetch_add(m.end - m.begin, std::memory_order_relaxed);
        return Status::OK();
      });
  ASSERT_TRUE(after.ok()) << after.ToString();
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ParallelForMorselsTest, FirstErrorInMorselOrderWins) {
  QuerySched sched(4);
  std::vector<MorselRange> morsels = SplitMorsels(64, 4);
  Status status = ParallelForMorsels(
      &sched, /*guard=*/nullptr, morsels,
      [](size_t index, MorselRange) -> Status {
        if (index >= 1) {
          return Status::Internal("morsel " + std::to_string(index));
        }
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("morsel 1"), std::string::npos)
      << status.ToString();
}

TEST(ParallelForMorselsTest, NullSchedRunsInlineAndKeepsFirstError) {
  // sched == nullptr is the serial path: every morsel still runs (so guard
  // checkpoint counts stay deterministic) and the first error in morsel
  // order wins.
  std::vector<MorselRange> morsels = SplitMorsels(4096, 4);
  ASSERT_GT(morsels.size(), 3u);
  std::atomic<int> calls{0};
  Status status = ParallelForMorsels(
      nullptr, /*guard=*/nullptr, morsels,
      [&calls](size_t index, MorselRange) -> Status {
        calls.fetch_add(1, std::memory_order_relaxed);
        if (index == 3 || index == 1) {
          return Status::Internal("morsel " + std::to_string(index));
        }
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("morsel 1"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(calls.load(), static_cast<int>(morsels.size()));
}

TEST(MorselSplitTest, CoversRangeExactlyOnce) {
  for (size_t n : {0u, 1u, 7u, 1000u}) {
    for (int threads : {1, 2, 8}) {
      std::vector<MorselRange> morsels = SplitMorsels(n, threads);
      size_t pos = 0;
      for (const MorselRange& m : morsels) {
        EXPECT_EQ(m.begin, pos);
        EXPECT_LT(m.begin, m.end);
        pos = m.end;
      }
      EXPECT_EQ(pos, n);
    }
  }
}

// ------------------------------------- serial vs parallel exact equality

void ExpectIdentical(const std::vector<Value>& actual,
                     const std::vector<Value>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(actual[i].Equals(expected[i]))
        << "row " << i << " differs:\n  parallel = " << actual[i].ToString()
        << "\n  serial   = " << expected[i].ToString();
  }
}

void ExpectSameStats(const ExecStats& a, const ExecStats& b) {
  EXPECT_EQ(a.rows_emitted, b.rows_emitted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.subplan_evals, b.subplan_evals);
  EXPECT_EQ(a.hash_probes, b.hash_probes);
  EXPECT_EQ(a.rows_built, b.rows_built);
  // Memoization counters are scheduling-independent: misses = distinct
  // correlation keys, hits = acquires − misses, both fixed by the data.
  EXPECT_EQ(a.subplan_cache_hits, b.subplan_cache_hits);
  EXPECT_EQ(a.subplan_cache_misses, b.subplan_cache_misses);
  EXPECT_EQ(a.subplan_cache_evictions, b.subplan_cache_evictions);
}

struct RunOutcome {
  std::vector<Value> rows;
  ExecStats stats;
};

RunOutcome RunWithThreads(PhysicalOp* op, int threads) {
  Executor executor(threads);
  auto rows = executor.RunPhysical(op);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  RunOutcome out;
  if (rows.ok()) out.rows = std::move(rows).value();
  out.stats = executor.stats();
  return out;
}

class ParallelHashJoinTest : public ::testing::TestWithParam<JoinMode> {
 protected:
  void SetUp() override {
    // Table-1-shaped data, scaled up: X(e, d), Y(a, b), equijoin d = b,
    // with dangling rows on both sides and groups of varying size.
    Random rng(11);
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                            {"d", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    for (int i = 0; i < 500; ++i) {
      TMDB_ASSERT_OK(x_->Insert(IntRow({"e", "d"},
                                       {i, rng.UniformInt(0, 120)})));
    }
    for (int i = 0; i < 900; ++i) {
      TMDB_ASSERT_OK(y_->Insert(IntRow({"a", "b"},
                                       {i, rng.UniformInt(0, 120)})));
    }
  }

  PhysicalOpPtr MakeHashJoin(JoinMode mode) {
    Expr xv = Expr::Var("x", x_->schema());
    Expr yv = Expr::Var("y", y_->schema());
    Expr xd = Expr::Must(Expr::Field(xv, "d"));
    Expr yb = Expr::Must(Expr::Field(yv, "b"));
    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = y_->schema();
    spec.pred = Expr::True();
    spec.func = yv;
    spec.label = "s";
    return PhysicalOpPtr(new HashJoinOp(
        PhysicalOpPtr(new TableScanOp(x_)), PhysicalOpPtr(new TableScanOp(y_)),
        std::move(spec), {xd}, {yb}));
  }

  std::shared_ptr<Table> x_;
  std::shared_ptr<Table> y_;
};

TEST_P(ParallelHashJoinTest, MatchesSerialExactly) {
  PhysicalOpPtr op = MakeHashJoin(GetParam());
  RunOutcome serial = RunWithThreads(op.get(), 1);
  for (int threads : {2, 4, 8}) {
    RunOutcome parallel = RunWithThreads(op.get(), threads);
    ExpectIdentical(parallel.rows, serial.rows);
    ExpectSameStats(parallel.stats, serial.stats);
  }
}

TEST_P(ParallelHashJoinTest, PoolReusableAfterFailedParallelBuild) {
  // Kill the build mid-flight with an injected fault, then reuse the SAME
  // executor (and pool): the rerun must match a clean serial run exactly.
  PhysicalOpPtr op = MakeHashJoin(GetParam());
  RunOutcome serial = RunWithThreads(op.get(), 1);

  FaultInjector injector;
  Executor executor(4);
  executor.set_fault_injector(&injector);
  injector.ArmNth(0);
  auto sized = executor.RunPhysical(op.get());
  ASSERT_TRUE(sized.ok()) << sized.status().ToString();
  const uint64_t total = injector.checkpoints_seen();
  ASSERT_GT(total, 1u);

  injector.ArmNth(total / 2);
  auto poisoned = executor.RunPhysical(op.get());
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal)
      << poisoned.status().ToString();

  injector.Disarm();
  auto recovered = executor.RunPhysical(op.get());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectIdentical(*recovered, serial.rows);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ParallelHashJoinTest,
    ::testing::Values(JoinMode::kInner, JoinMode::kSemi, JoinMode::kAnti,
                      JoinMode::kLeftOuter, JoinMode::kNestJoin),
    [](const ::testing::TestParamInfo<JoinMode>& info) {
      return JoinModeName(info.param);
    });

// ν and ν* grouping: nest over a scan, and the Section 6 outerjoin-then-ν*
// composition (NULL groups → ∅), both with parallel grouping.

class ParallelNestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(13);
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                            {"d", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    for (int i = 0; i < 400; ++i) {
      TMDB_ASSERT_OK(x_->Insert(IntRow({"e", "d"},
                                       {i, rng.UniformInt(0, 90)})));
    }
    for (int i = 0; i < 800; ++i) {
      TMDB_ASSERT_OK(y_->Insert(IntRow({"a", "b"},
                                       {i, rng.UniformInt(0, 90)})));
    }
  }

  std::shared_ptr<Table> x_;
  std::shared_ptr<Table> y_;
};

TEST_F(ParallelNestTest, PlainNestMatchesSerial) {
  // ν: group Y by b, collecting the a values.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(y_));
  Expr yv = Expr::Var("j", y_->schema());
  Expr elem = Expr::Must(Expr::Field(yv, "a"));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nest,
      LogicalOp::Nest(std::move(scan), {"b"}, "j", elem, "s",
                      /*null_group_to_empty=*/false));
  Planner planner;
  TMDB_ASSERT_OK_AND_ASSIGN(PhysicalOpPtr plan, planner.Plan(nest));
  RunOutcome serial = RunWithThreads(plan.get(), 1);
  for (int threads : {2, 4, 8}) {
    RunOutcome parallel = RunWithThreads(plan.get(), threads);
    ExpectIdentical(parallel.rows, serial.rows);
    ExpectSameStats(parallel.stats, serial.stats);
  }
}

TEST_F(ParallelNestTest, OuterJoinThenNestStarMatchesSerial) {
  // ν*(X ⟖ Y): the Section 6 equivalent of the nest join; dangling X rows
  // must come out with s = ∅, not {NULL}, under every thread count.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr xs, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr ys, LogicalOp::Scan(y_));
  Expr xv = Expr::Var("x", x_->schema());
  Expr yv = Expr::Var("y", y_->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                      Expr::Must(Expr::Field(xv, "d")),
                                      Expr::Must(Expr::Field(yv, "b"))));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr joined,
      LogicalOp::OuterJoin(std::move(xs), std::move(ys), "x", "y", pred));
  Expr j = Expr::Var("j", joined->output_type());
  Expr elem = Expr::Must(Expr::MakeTuple(
      {"a", "b"}, {Expr::Must(Expr::Field(j, "a")),
                   Expr::Must(Expr::Field(j, "b"))}));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nest,
      LogicalOp::Nest(std::move(joined), {"e", "d"}, "j", elem, "s",
                      /*null_group_to_empty=*/true));

  PlannerOptions options;
  options.join_impl = JoinImpl::kHash;
  Planner planner(options);
  TMDB_ASSERT_OK_AND_ASSIGN(PhysicalOpPtr plan, planner.Plan(nest));
  RunOutcome serial = RunWithThreads(plan.get(), 1);
  for (int threads : {2, 4, 8}) {
    RunOutcome parallel = RunWithThreads(plan.get(), threads);
    ExpectIdentical(parallel.rows, serial.rows);
    ExpectSameStats(parallel.stats, serial.stats);
  }
}

// --------------------------------------- end-to-end: Section 8 pipeline

TEST(ParallelPipelineTest, Section8MatchesSerial) {
  Database db;
  Section8Config config;
  config.num_x = 60;
  config.num_y = 120;
  config.num_z = 240;
  config.b_domain = 31;
  config.d_domain = 61;
  config.seed = 44;
  TMDB_ASSERT_OK(LoadSection8Tables(&db, config));

  const char* kQueries[] = {
      // Three-block subset pipeline: two nest joins (steps (1)-(4)).
      "SELECT x FROM X x WHERE x.a SUBSETEQ ("
      "SELECT y.a FROM Y y WHERE x.b = y.b AND y.c SUBSETEQ ("
      "SELECT z.c FROM Z z WHERE y.d = z.d))",
      // Membership variant: semijoin + antijoin.
      "SELECT x FROM X x WHERE 2 IN ("
      "SELECT y.a FROM Y y WHERE x.b = y.b AND 3 NOT IN ("
      "SELECT z.c FROM Z z WHERE y.d = z.d))",
  };
  for (const char* query : kQueries) {
    RunOptions serial_options;
    serial_options.strategy = Strategy::kNestJoin;
    TMDB_ASSERT_OK_AND_ASSIGN(QueryResult serial,
                              db.Run(query, serial_options));
    for (int threads : {2, 4, 8}) {
      RunOptions options;
      options.strategy = Strategy::kNestJoin;
      options.num_threads = threads;
      TMDB_ASSERT_OK_AND_ASSIGN(QueryResult parallel, db.Run(query, options));
      ExpectIdentical(parallel.rows, serial.rows);
    }
  }
}

// Reopening a parallel op must reset all materialised state.

// ----------------------- correlated subplans inside parallel operators
//
// These plans embed kSubplan expressions in hash-join keys, probe
// predicates, and nest element functions — the sites that used to force a
// serial fallback. Workers now evaluate them through per-morsel forked
// SubplanRunners sharing one memo cache, so every thread count must still
// be bit-identical to serial, stats included.

class SubplanParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(17);
    TMDB_ASSERT_OK_AND_ASSIGN(
        x_, Table::Create("X", Type::Tuple({{"e", Type::Int()},
                                            {"d", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        y_, Table::Create("Y", Type::Tuple({{"a", Type::Int()},
                                            {"b", Type::Int()}})));
    TMDB_ASSERT_OK_AND_ASSIGN(
        z_, Table::Create("Z", Type::Tuple({{"k", Type::Int()},
                                            {"v", Type::Int()}})));
    for (int i = 0; i < 300; ++i) {
      TMDB_ASSERT_OK(x_->Insert(IntRow({"e", "d"},
                                       {i, rng.UniformInt(0, 40)})));
    }
    for (int i = 0; i < 500; ++i) {
      TMDB_ASSERT_OK(y_->Insert(IntRow({"a", "b"},
                                       {i, rng.UniformInt(0, 40)})));
    }
    for (int i = 0; i < 150; ++i) {
      // Unique rows (tables are sets): k cycles the join domain, v tags i.
      TMDB_ASSERT_OK(z_->Insert(IntRow({"k", "v"}, {i % 41, i})));
    }
  }

  /// SELECT z.v FROM Z z WHERE z.k = `outer_field` — a subplan correlated
  /// on the outer variable `outer_var`, of type P(INT).
  Expr MakeSubplan(const std::string& outer_var, const Expr& outer_field) {
    auto scan = LogicalOp::Scan(z_);
    EXPECT_TRUE(scan.ok());
    Expr zv = Expr::Var("z", z_->schema());
    Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                        Expr::Must(Expr::Field(zv, "k")),
                                        outer_field));
    auto select = LogicalOp::Select(std::move(*scan), "z", pred);
    EXPECT_TRUE(select.ok());
    Expr mv = Expr::Var("m", (*select)->output_type());
    auto map = LogicalOp::Map(std::move(*select), "m",
                              Expr::Must(Expr::Field(mv, "v")));
    EXPECT_TRUE(map.ok());
    return PlanSubplan::MakeExpr(std::move(*map), {outer_var});
  }

  /// Hash join whose build/probe keys count a correlated subplan and whose
  /// residual predicate tests membership in another — the exact shapes the
  /// old AnyHasSubplan gate forced serial.
  PhysicalOpPtr MakeSubplanHashJoin(JoinMode mode) {
    Expr xv = Expr::Var("x", x_->schema());
    Expr yv = Expr::Var("y", y_->schema());
    Expr left_key = Expr::Must(Expr::Aggregate(
        AggFunc::kCount, MakeSubplan("x", Expr::Must(Expr::Field(xv, "d")))));
    Expr right_key = Expr::Must(Expr::Aggregate(
        AggFunc::kCount, MakeSubplan("y", Expr::Must(Expr::Field(yv, "b")))));
    JoinSpec spec;
    spec.mode = mode;
    spec.left_var = "x";
    spec.right_var = "y";
    spec.right_type = y_->schema();
    spec.pred = Expr::Must(Expr::Binary(
        BinaryOp::kIn, Expr::Must(Expr::Field(yv, "b")),
        MakeSubplan("x", Expr::Must(Expr::Field(xv, "d")))));
    spec.func = yv;
    spec.label = "s";
    return PhysicalOpPtr(new HashJoinOp(
        PhysicalOpPtr(new TableScanOp(x_)), PhysicalOpPtr(new TableScanOp(y_)),
        std::move(spec), {left_key}, {right_key}));
  }

  std::shared_ptr<Table> x_;
  std::shared_ptr<Table> y_;
  std::shared_ptr<Table> z_;
};

TEST_F(SubplanParallelTest, HashJoinWithSubplanKeysAndPredMatchesSerial) {
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kNestJoin}) {
    SCOPED_TRACE(JoinModeName(mode));
    PhysicalOpPtr op = MakeSubplanHashJoin(mode);
    RunOutcome serial = RunWithThreads(op.get(), 1);
    EXPECT_GT(serial.stats.subplan_cache_hits, 0u);
    for (int threads : {2, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      RunOutcome parallel = RunWithThreads(op.get(), threads);
      ExpectIdentical(parallel.rows, serial.rows);
      ExpectSameStats(parallel.stats, serial.stats);
    }
  }
}

TEST_F(SubplanParallelTest, HashJoinWithSubplansAndCacheOffMatchesSerial) {
  PhysicalOpPtr op = MakeSubplanHashJoin(JoinMode::kNestJoin);
  auto run = [&](int threads) {
    Executor executor(threads);
    executor.set_subplan_cache_bytes(0);
    auto rows = executor.RunPhysical(op.get());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    RunOutcome out;
    if (rows.ok()) out.rows = std::move(rows).value();
    out.stats = executor.stats();
    return out;
  };
  RunOutcome serial = run(1);
  EXPECT_EQ(serial.stats.subplan_cache_hits, 0u);
  EXPECT_EQ(serial.stats.subplan_cache_misses, 0u);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RunOutcome parallel = run(threads);
    ExpectIdentical(parallel.rows, serial.rows);
    ExpectSameStats(parallel.stats, serial.stats);
  }
}

TEST_F(SubplanParallelTest, NestWithSubplanElemMatchesSerial) {
  // ν grouping Y by b where the collected element is itself a correlated
  // subquery result — the old ExprHasSubplan gate in NestOp.
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr scan, LogicalOp::Scan(y_));
  Expr j = Expr::Var("j", y_->schema());
  Expr elem = MakeSubplan("j", Expr::Must(Expr::Field(j, "b")));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nest,
      LogicalOp::Nest(std::move(scan), {"b"}, "j", elem, "s",
                      /*null_group_to_empty=*/false));
  Planner planner;
  TMDB_ASSERT_OK_AND_ASSIGN(PhysicalOpPtr plan, planner.Plan(nest));
  RunOutcome serial = RunWithThreads(plan.get(), 1);
  EXPECT_GT(serial.stats.subplan_cache_hits, 0u);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RunOutcome parallel = RunWithThreads(plan.get(), threads);
    ExpectIdentical(parallel.rows, serial.rows);
    ExpectSameStats(parallel.stats, serial.stats);
  }
}

// End to end: the COUNT-bug and SUBSETEQ-bug query shapes through
// Database::Run, threads {1, 2, 4} × cache on/off × naive and nest-join
// strategies. Rows must be bit-identical everywhere; stats must not depend
// on the thread count for a fixed configuration.

TEST(SubplanParallelE2eTest, CorrelatedShapesAcrossThreadsAndCacheModes) {
  Database db;
  CountBugConfig rs;
  rs.num_r = 80;
  rs.num_s = 160;
  TMDB_ASSERT_OK(LoadCountBugTables(&db, rs));
  SubsetBugConfig xy;
  xy.num_x = 80;
  xy.num_y = 160;
  TMDB_ASSERT_OK(LoadSubsetBugTables(&db, xy));

  const char* kQueries[] = {
      // COUNT-bug shape: aggregate over a correlated subquery.
      "SELECT (b = r.b, n = count(SELECT s.d FROM S s WHERE r.c = s.c)) "
      "FROM R r",
      // SUBSETEQ-bug shape: set comparison against a correlated subquery.
      "SELECT x FROM X x WHERE x.a SUBSETEQ "
      "(SELECT y.a FROM Y y WHERE x.b = y.b)",
  };
  for (const char* query : kQueries) {
    SCOPED_TRACE(query);
    for (Strategy strategy : {Strategy::kNaive, Strategy::kNestJoin}) {
      for (uint64_t cache_bytes : {uint64_t{0}, uint64_t{16} << 20}) {
        SCOPED_TRACE(StrategyName(strategy) + "/cache=" +
                     std::to_string(cache_bytes));
        RunOptions reference_options;
        reference_options.strategy = strategy;
        reference_options.subplan_cache_bytes = cache_bytes;
        TMDB_ASSERT_OK_AND_ASSIGN(QueryResult reference,
                                  db.Run(query, reference_options));
        for (int threads : {2, 4}) {
          RunOptions options = reference_options;
          options.num_threads = threads;
          TMDB_ASSERT_OK_AND_ASSIGN(QueryResult parallel,
                                    db.Run(query, options));
          ExpectIdentical(parallel.rows, reference.rows);
          ExpectSameStats(parallel.stats, reference.stats);
        }
      }
    }
  }
}

TEST_F(ParallelNestTest, ReopenIsDeterministic) {
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr xs, LogicalOp::Scan(x_));
  TMDB_ASSERT_OK_AND_ASSIGN(LogicalOpPtr ys, LogicalOp::Scan(y_));
  Expr xv = Expr::Var("x", x_->schema());
  Expr yv = Expr::Var("y", y_->schema());
  Expr pred = Expr::Must(Expr::Binary(BinaryOp::kEq,
                                      Expr::Must(Expr::Field(xv, "d")),
                                      Expr::Must(Expr::Field(yv, "b"))));
  TMDB_ASSERT_OK_AND_ASSIGN(
      LogicalOpPtr nj,
      LogicalOp::NestJoin(std::move(xs), std::move(ys), "x", "y", pred, yv,
                          "s"));
  PlannerOptions options;
  options.join_impl = JoinImpl::kHash;
  Planner planner(options);
  TMDB_ASSERT_OK_AND_ASSIGN(PhysicalOpPtr plan, planner.Plan(nj));

  Executor executor(4);
  TMDB_ASSERT_OK_AND_ASSIGN(auto first, executor.RunPhysical(plan.get()));
  TMDB_ASSERT_OK_AND_ASSIGN(auto second, executor.RunPhysical(plan.get()));
  ExpectIdentical(second, first);
  RunOutcome serial = RunWithThreads(plan.get(), 1);
  ExpectIdentical(first, serial.rows);
}

}  // namespace
}  // namespace tmdb
