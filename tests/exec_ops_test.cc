// Unit tests for the non-join physical operators: scan, filter, map
// (set-semantics dedup), nest (ν and ν*), unnest (μ), union, difference,
// expr-source, and the work counters.

#include <gtest/gtest.h>

#include "catalog/table.h"
#include "exec/basic_ops.h"
#include "exec/executor.h"
#include "exec/nest_op.h"
#include "tests/test_util.h"
#include "values/value_ops.h"

namespace tmdb {
namespace {

using testutil::IntRow;
using testutil::IntSet;
using testutil::RowsEqual;

class ExecOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TMDB_ASSERT_OK_AND_ASSIGN(
        table_, Table::Create("T", Type::Tuple({{"k", Type::Int()},
                                                {"v", Type::Int()}})));
    TMDB_ASSERT_OK(table_->InsertAll({
        IntRow({"k", "v"}, {1, 10}),
        IntRow({"k", "v"}, {1, 20}),
        IntRow({"k", "v"}, {2, 30}),
        IntRow({"k", "v"}, {3, 10}),
    }));
  }

  std::vector<Value> Run(PhysicalOp* op) {
    stats_.Reset();
    ExecContext ctx;
    ctx.stats = &stats_;
    auto rows = CollectRows(op, &ctx);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Value>();
  }

  Expr RowVar() { return Expr::Var("t", table_->schema()); }
  Expr FieldOf(const char* f) {
    return Expr::Must(Expr::Field(RowVar(), f));
  }

  std::shared_ptr<Table> table_;
  ExecStats stats_;
};

TEST_F(ExecOpsTest, TableScanEmitsAllRows) {
  TableScanOp scan(table_);
  EXPECT_EQ(Run(&scan).size(), 4u);
  EXPECT_EQ(stats_.rows_emitted, 4u);
}

TEST_F(ExecOpsTest, FilterCountsPredicateEvals) {
  FilterOp filter(PhysicalOpPtr(new TableScanOp(table_)), "t",
                  Expr::Must(Expr::Binary(BinaryOp::kEq, FieldOf("k"),
                                          Expr::Literal(Value::Int(1)))));
  EXPECT_EQ(Run(&filter).size(), 2u);
  EXPECT_EQ(stats_.predicate_evals, 4u);
}

TEST_F(ExecOpsTest, MapDeduplicates) {
  // Projection onto k produces {1, 2, 3} — set semantics collapse the two
  // k=1 rows.
  MapOp map(PhysicalOpPtr(new TableScanOp(table_)), "t", FieldOf("k"));
  std::vector<Value> rows = Run(&map);
  EXPECT_TRUE(RowsEqual(rows, {Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST_F(ExecOpsTest, NestGroupsByAttribute) {
  NestOp nest(PhysicalOpPtr(new TableScanOp(table_)), {"k"}, "t",
              FieldOf("v"), "vs", /*null_group_to_empty=*/false);
  std::vector<Value> rows = Run(&nest);
  EXPECT_TRUE(RowsEqual(
      rows, {Value::Tuple({"k", "vs"}, {Value::Int(1), IntSet({10, 20})}),
             Value::Tuple({"k", "vs"}, {Value::Int(2), IntSet({30})}),
             Value::Tuple({"k", "vs"}, {Value::Int(3), IntSet({10})})}));
}

TEST_F(ExecOpsTest, NestStarDropsNullPadding) {
  // Simulate outerjoin output: one group whose only element is NULL, one
  // whose only element is an all-NULL tuple, one real group.
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto padded,
      Table::Create("P", Type::Tuple({{"k", Type::Int()},
                                      {"p", Type::Tuple({{"q", Type::Int()}})}})));
  TMDB_ASSERT_OK(padded->Insert(Value::Tuple(
      {"k", "p"}, {Value::Int(1),
                   Value::Tuple({"q"}, {Value::Null()})})));
  TMDB_ASSERT_OK(padded->Insert(Value::Tuple(
      {"k", "p"}, {Value::Int(2), Value::Tuple({"q"}, {Value::Int(7)})})));
  Expr row = Expr::Var("t", padded->schema());
  NestOp nest(PhysicalOpPtr(new TableScanOp(padded)), {"k"}, "t",
              Expr::Must(Expr::Field(row, "p")), "ps",
              /*null_group_to_empty=*/true);
  std::vector<Value> rows = Run(&nest);
  EXPECT_TRUE(RowsEqual(
      rows,
      {Value::Tuple({"k", "ps"}, {Value::Int(1), Value::EmptySet()}),
       Value::Tuple({"k", "ps"},
                    {Value::Int(2),
                     Value::Set({Value::Tuple({"q"}, {Value::Int(7)})})})}));
}

TEST_F(ExecOpsTest, UnnestFlattens) {
  TMDB_ASSERT_OK_AND_ASSIGN(
      auto nested,
      Table::Create("N", Type::Tuple(
                             {{"k", Type::Int()},
                              {"s", Type::Set(Type::Tuple(
                                        {{"e", Type::Int()}}))}})));
  auto elem = [](int64_t e) { return Value::Tuple({"e"}, {Value::Int(e)}); };
  TMDB_ASSERT_OK(nested->Insert(Value::Tuple(
      {"k", "s"}, {Value::Int(1), Value::Set({elem(10), elem(11)})})));
  TMDB_ASSERT_OK(nested->Insert(
      Value::Tuple({"k", "s"}, {Value::Int(2), Value::EmptySet()})));
  UnnestOp unnest(PhysicalOpPtr(new TableScanOp(nested)), "s");
  std::vector<Value> rows = Run(&unnest);
  // k=2 vanishes: μ is not information-preserving.
  EXPECT_TRUE(RowsEqual(rows, {IntRow({"k", "e"}, {1, 10}),
                               IntRow({"k", "e"}, {1, 11})}));
}

TEST_F(ExecOpsTest, UnionDeduplicatesAcrossInputs) {
  UnionOp u(PhysicalOpPtr(new TableScanOp(table_)),
            PhysicalOpPtr(new TableScanOp(table_)));
  EXPECT_EQ(Run(&u).size(), 4u);
}

TEST_F(ExecOpsTest, DifferenceRemovesRightRows) {
  FilterOp* right = new FilterOp(
      PhysicalOpPtr(new TableScanOp(table_)), "t",
      Expr::Must(Expr::Binary(BinaryOp::kEq, FieldOf("k"),
                              Expr::Literal(Value::Int(1)))));
  DifferenceOp diff(PhysicalOpPtr(new TableScanOp(table_)),
                    PhysicalOpPtr(right));
  std::vector<Value> rows = Run(&diff);
  EXPECT_TRUE(RowsEqual(rows, {IntRow({"k", "v"}, {2, 30}),
                               IntRow({"k", "v"}, {3, 10})}));
}

TEST_F(ExecOpsTest, ExprSourceIteratesCorrelatedCollection) {
  ExprSourceOp source(Expr::Literal(IntSet({5, 6})));
  std::vector<Value> rows = Run(&source);
  EXPECT_TRUE(RowsEqual(rows, {Value::Int(5), Value::Int(6)}));

  // With a correlation environment.
  Environment env;
  env.Bind("o", Value::Tuple({"s"}, {IntSet({7})}));
  Expr o = Expr::Var("o", Type::Tuple({{"s", Type::Set(Type::Int())}}));
  ExprSourceOp correlated(Expr::Must(Expr::Field(o, "s")));
  ExecContext ctx;
  ctx.outer_env = &env;
  ctx.stats = &stats_;
  TMDB_ASSERT_OK_AND_ASSIGN(auto corr_rows, CollectRows(&correlated, &ctx));
  EXPECT_TRUE(RowsEqual(corr_rows, {Value::Int(7)}));
}

TEST_F(ExecOpsTest, StatsToStringMentionsAllCounters) {
  ExecStats stats;
  stats.rows_emitted = 1;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("rows_emitted=1"), std::string::npos);
  EXPECT_NE(s.find("predicate_evals"), std::string::npos);
  EXPECT_NE(s.find("subplan_evals"), std::string::npos);
}

TEST_F(ExecOpsTest, PhysicalPlanToString) {
  FilterOp filter(PhysicalOpPtr(new TableScanOp(table_)), "t", Expr::True());
  const std::string rendered = filter.ToString();
  EXPECT_NE(rendered.find("Filter"), std::string::npos);
  EXPECT_NE(rendered.find("TableScan(T)"), std::string::npos);
}

}  // namespace
}  // namespace tmdb
